// Command stassign runs the PICOLA-based state-assignment tool on a KISS2
// machine: it extracts face constraints, encodes the states at minimum
// code length, and minimizes the encoded two-level implementation.
//
//	stassign machine.kiss              assign with PICOLA
//	stassign -encoder nova-ih -bench keyb
//	stassign -pla out.pla machine.kiss also write the minimized PLA
//	stassign -compare machine.kiss     compare all encoders
//
// -j N bounds the encoder's internal parallel fan-out (the PICOLA
// portfolio, ENC's candidate scoring); the default is GOMAXPROCS and
// -j 1 reproduces the sequential execution — the codes are identical
// either way.
//
// Observability: -trace FILE streams the PICOLA encoder's structured
// JSONL events, -metrics FILE writes the metrics snapshot at exit,
// -ledger FILE writes the per-run ledger record, -http ADDR serves the
// live introspection endpoints for the duration of the run,
// -cpuprofile/-memprofile write pprof profiles, and -v prints a per-stage
// wall-clock summary to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"picola/internal/baseline/enc"
	"picola/internal/baseline/nova"
	"picola/internal/benchgen"
	"picola/internal/blif"
	"picola/internal/core"
	"picola/internal/eval"
	"picola/internal/face"
	"picola/internal/kiss"
	"picola/internal/obs"
	"picola/internal/obs/obshttp"
	"picola/internal/optenc"
	"picola/internal/par"
	"picola/internal/pla"
	"picola/internal/stassign"
	"picola/internal/statemin"
	"picola/internal/symbolic"
	"picola/internal/verify"
)

var encoderNames = map[string]stassign.Encoder{
	"picola":   stassign.Picola,
	"nova-ih":  stassign.NovaIH,
	"nova-ioh": stassign.NovaIOH,
	"enc":      stassign.Enc,
	"natural":  stassign.Natural,
	"optimal":  stassign.Optimal,
}

func main() {
	encName := flag.String("encoder", "picola", "picola, nova-ih, nova-ioh, enc, natural or optimal (≤8 states)")
	bench := flag.String("bench", "", "use a named synthetic benchmark instead of a file")
	plaOut := flag.String("pla", "", "write the minimized encoded PLA to this file")
	blifOut := flag.String("blif", "", "write the encoded machine as a BLIF netlist to this file")
	compare := flag.Bool("compare", false, "run every encoder and compare")
	reduce := flag.Bool("reduce", false, "merge compatible states before assignment")
	check := flag.Bool("check", false, "verify the state encoding against the semantic oracle; exit 1 with a shrunk repro on failure")
	seed := flag.Int64("seed", 1, "seed for the randomized encoders")
	timeout := flag.Duration("timeout", 0, "bound the run's wall clock (0 = none)")
	jFlag := par.RegisterFlag(flag.CommandLine)
	verbose := flag.Bool("v", false, "print a per-stage wall-clock summary to stderr")
	var oc obs.Config
	oc.Command = "stassign"
	oc.RegisterFlags(flag.CommandLine)
	flag.Parse()
	jWorkers := par.Workers(*jFlag)
	memo := eval.NewCache()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	session, err := oc.Start()
	if err != nil {
		fatal(err)
	}
	httpSrv, err := obshttp.StartContext(ctx, oc.HTTPAddr, obshttp.Options{})
	if err != nil {
		fatal(err)
	}
	if httpSrv != nil {
		fmt.Fprintf(os.Stderr, "stassign: introspection server on http://%s\n", httpSrv.Addr())
		defer func() { _ = httpSrv.Close() }()
	}
	defer func() {
		if *verbose {
			obs.StageSummary(os.Stderr, obs.Default)
		}
		if err := session.Close(); err != nil {
			fatal(err)
		}
	}()

	m, err := loadMachine(*bench, flag.Args())
	if err != nil {
		fatal(err)
	}
	if *reduce {
		red, _, err := statemin.ReduceCompatible(m)
		if err != nil {
			fatal(err)
		}
		if red.NumStates() < m.NumStates() {
			fmt.Printf("state reduction: %d -> %d states\n", m.NumStates(), red.NumStates())
		}
		m = red
	}
	if *compare {
		for _, name := range []string{"picola", "nova-ih", "nova-ioh", "enc", "natural"} {
			rep, err := stassign.AssignContext(ctx, m, stassign.Options{Encoder: encoderNames[name], Seed: *seed,
				Workers: jWorkers, Cache: memo})
			if err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
			fmt.Printf("%-9s products=%-5d area=%-6d satisfied=%d/%d time=%v\n",
				name, rep.Products, rep.Area, rep.SatisfiedConstraints,
				rep.Constraints, rep.TotalTime.Round(1e6))
			if *check {
				if err := checkAssignment(m, rep.Encoding, memo).Err(); err != nil {
					fatal(fmt.Errorf("%s: -check failed: %w", name, err))
				}
			}
		}
		return
	}
	encoder, ok := encoderNames[*encName]
	if !ok {
		fatal(fmt.Errorf("unknown encoder %q", *encName))
	}
	rep, err := stassign.AssignContext(ctx, m, stassign.Options{Encoder: encoder, Seed: *seed, Trace: session.Tracer,
		Workers: jWorkers, Cache: memo})
	if err != nil {
		fatal(err)
	}
	if *check {
		if failure := checkAssignment(m, rep.Encoding, memo); !failure.Ok() {
			fmt.Fprintln(os.Stderr, "stassign: -check failed:", failure.Err())
			reEncode := faceEncoder(encoder, *seed, jWorkers, memo)
			prob, _, err := symbolic.ExtractConstraints(m)
			if err == nil {
				shrunk := verify.Shrink(prob, func(q *face.Problem) bool {
					qe, err := reEncode(q)
					if err != nil {
						return false
					}
					bad := &verify.Report{}
					bad.Merge(verify.CheckEncoding(q, qe, verify.Options{RequireMinLength: true}))
					bad.Merge(verify.CheckMinimization(q, qe, memo))
					bad.Merge(verify.CheckCost(q, qe, memo))
					return !bad.Ok()
				}, 0)
				fmt.Fprintf(os.Stderr, "stassign: shrunk constraint-level repro:\n%s", verify.Repro(shrunk))
			}
			fatal(fmt.Errorf("semantic verification failed"))
		}
		fmt.Fprintln(os.Stderr, "stassign: -check passed")
	}
	fmt.Printf("machine: %s  states=%d  constraints=%d (satisfied %d)\n",
		rep.Name, rep.States, rep.Constraints, rep.SatisfiedConstraints)
	fmt.Println("state codes:")
	for i, st := range m.States {
		fmt.Printf("  %-12s %s\n", st, rep.Encoding.CodeString(i))
	}
	fmt.Printf("two-level implementation: %d product terms, PLA area %d\n",
		rep.Products, rep.Area)
	fmt.Printf("time: encode %v, total %v\n",
		rep.EncodeTime.Round(1e6), rep.TotalTime.Round(1e6))
	if *blifOut != "" {
		min, d, err := stassign.MinimizeEncodedContext(ctx, m, rep.Encoding)
		if err != nil {
			fatal(err)
		}
		mod := blif.FromEncoded(m, rep.Encoding, d, min)
		f, err := os.Create(*blifOut)
		if err != nil {
			fatal(err)
		}
		if err := mod.Write(f); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
		fmt.Println("wrote", *blifOut)
	}
	if *plaOut != "" {
		min, d, err := stassign.MinimizeEncodedContext(ctx, m, rep.Encoding)
		if err != nil {
			fatal(err)
		}
		ni := m.NumInputs + rep.Encoding.NV
		no := rep.Encoding.NV + m.NumOutputs
		out := pla.New(ni, no)
		out.Type = pla.TypeFD
		out.On = min
		_ = d
		f, err := os.Create(*plaOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := out.Write(f); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *plaOut)
	}
}

func loadMachine(bench string, args []string) (*kiss.FSM, error) {
	if bench != "" {
		spec, ok := benchgen.ByName(bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", bench)
		}
		return benchgen.Generate(spec), nil
	}
	if len(args) == 0 {
		return nil, fmt.Errorf("need a KISS2 file or -bench name")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := kiss.Parse(f)
	if err != nil {
		return nil, err
	}
	if m.Name == "" {
		m.Name = args[0]
	}
	return m, nil
}

// checkAssignment re-extracts the machine's face constraints and runs
// the semantic oracle stack on the state encoding.
func checkAssignment(m *kiss.FSM, e *face.Encoding, memo *eval.Cache) *verify.Report {
	rep := &verify.Report{}
	prob, _, err := symbolic.ExtractConstraints(m)
	if err != nil {
		rep.Merge(&verify.Report{Failures: []verify.Failure{{
			Check: "extract", Constraint: -1, Detail: err.Error()}}})
		return rep
	}
	rep.Merge(verify.CheckEncoding(prob, e, verify.Options{RequireMinLength: true}))
	rep.Merge(verify.CheckMinimization(prob, e, memo))
	rep.Merge(verify.CheckCost(prob, e, memo))
	return rep
}

// faceEncoder maps a stassign encoder to its constraint-level core so a
// failing instance can be shrunk to a consfile repro without a machine
// around it. NovaIOH falls back to the input-hybrid objective — the
// output pairs need the FSM, which a shrunk constraint instance no
// longer has.
func faceEncoder(which stassign.Encoder, seed int64, workers int, memo *eval.Cache) func(*face.Problem) (*face.Encoding, error) {
	switch which {
	case stassign.NovaIH, stassign.NovaIOH:
		return func(q *face.Problem) (*face.Encoding, error) {
			return nova.Encode(q, nova.Options{Variant: nova.IHybrid, Seed: seed})
		}
	case stassign.Enc:
		return func(q *face.Problem) (*face.Encoding, error) {
			r, err := enc.Encode(q, enc.Options{Seed: seed, Workers: workers, Cache: memo})
			if err != nil {
				return nil, err
			}
			return r.Encoding, nil
		}
	case stassign.Natural:
		return func(q *face.Problem) (*face.Encoding, error) {
			e := face.NewEncoding(q.N(), q.MinLength())
			for s := 0; s < q.N(); s++ {
				e.Codes[s] = uint64(s)
			}
			return e, nil
		}
	case stassign.Optimal:
		return func(q *face.Problem) (*face.Encoding, error) {
			r, err := optenc.Optimal(q)
			if err != nil {
				return nil, err
			}
			return r.Encoding, nil
		}
	default:
		return func(q *face.Problem) (*face.Encoding, error) {
			r, err := core.Encode(q, core.Options{ExactPolishBudget: -1, Workers: workers, Cache: memo})
			if err != nil {
				return nil, err
			}
			return r.Encoding, nil
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stassign:", err)
	os.Exit(1)
}
