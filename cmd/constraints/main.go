// Command constraints extracts the face-constrained encoding problem of a
// KISS2 machine (or a named synthetic benchmark) and prints it in the
// constraint-matrix file format cmd/picola consumes — the glue between
// the symbolic front end and the encoders.
//
//	constraints machine.kiss            > machine.cons
//	constraints -bench keyb             > keyb.cons
//	constraints -bench keyb | picola -algo picola
package main

import (
	"flag"
	"fmt"
	"os"

	"picola/internal/benchgen"
	"picola/internal/consfile"
	"picola/internal/kiss"
	"picola/internal/symbolic"
)

func main() {
	bench := flag.String("bench", "", "use a named synthetic benchmark instead of a file")
	flag.Parse()
	var m *kiss.FSM
	if *bench != "" {
		spec, ok := benchgen.ByName(*bench)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *bench))
		}
		m = benchgen.Generate(spec)
	} else {
		if flag.NArg() == 0 {
			fatal(fmt.Errorf("need a KISS2 file or -bench name"))
		}
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		var perr error
		m, perr = kiss.Parse(f)
		f.Close()
		if perr != nil {
			fatal(perr)
		}
		if m.Name == "" {
			m.Name = flag.Arg(0)
		}
	}
	p, implicants, err := symbolic.ExtractConstraints(m)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "constraints: %d states, %d minimized implicants, %d group constraints\n",
		m.NumStates(), implicants, len(p.Constraints))
	if err := consfile.Write(os.Stdout, p); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "constraints:", err)
	os.Exit(1)
}
