// Command verify audits constraint-file corpora against the semantic
// verification oracle (internal/verify): every instance is encoded by
// the selected encoders and the result checked from first principles —
// encoding validity (independent supercube/BDD/brute-force membership),
// differential minimization (espresso vs the exact cover, ON/OFF
// containment), evaluator cross-summation, and metamorphic invariance
// under symbol/column/constraint transformations.
//
//	verify testdata/figure1.cons            audit one file with all encoders
//	verify -algo picola -random 20 -seed 1  audit 20 random benchgen instances
//	verify -random 8 a.cons b.cons          files plus random instances
//
// Any oracle failure prints the disagreements plus a shrunk consfile
// repro and exits 1; exit 0 means every check passed.
//
// Observability: -trace, -metrics, -ledger, -http, -cpuprofile and
// -memprofile as in cmd/picola — a long random audit with -http exposes
// live /metrics and /debug/pprof while it runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"picola"
	"picola/internal/baseline/enc"
	"picola/internal/baseline/nova"
	"picola/internal/benchgen"
	"picola/internal/consfile"
	"picola/internal/eval"
	"picola/internal/face"
	"picola/internal/obs"
	"picola/internal/obs/obshttp"
	"picola/internal/optenc"
	"picola/internal/par"
	"picola/internal/verify"
)

// jWorkers and memo are the -j fan-out width and the process-wide
// minimization memo-cache, set in main; runCtx carries the -timeout
// deadline into every encoder run.
var (
	jWorkers = 1
	memo     *eval.Cache
	runCtx   = context.Background()
)

// encoderFunc produces an encoding for one instance.
type encoderFunc func(p *face.Problem, seed int64) (*face.Encoding, error)

// encoders lists the auditable encoders in a fixed order (the -algo
// default runs the three heuristics; "optimal" is opt-in, being
// factorial and capped at optenc.MaxSymbols symbols).
var encoders = []struct {
	name string
	run  encoderFunc
}{
	// The picola entry goes through the public package: the audit then
	// exercises the same surface callers use, not just the internal core.
	{"picola", func(p *face.Problem, seed int64) (*face.Encoding, error) {
		r, err := picola.Encode(runCtx, p, picola.Options{Workers: jWorkers, Cache: memo})
		if err != nil {
			return nil, err
		}
		return r.Encoding, nil
	}},
	{"nova", func(p *face.Problem, seed int64) (*face.Encoding, error) {
		return nova.Encode(p, nova.Options{Seed: seed})
	}},
	{"enc", func(p *face.Problem, seed int64) (*face.Encoding, error) {
		r, err := enc.Encode(p, enc.Options{Seed: seed, Workers: jWorkers, Cache: memo})
		if err != nil {
			return nil, err
		}
		return r.Encoding, nil
	}},
	{"optimal", func(p *face.Problem, seed int64) (*face.Encoding, error) {
		r, err := optenc.Optimal(p)
		if err != nil {
			return nil, err
		}
		return r.Encoding, nil
	}},
}

func main() {
	algo := flag.String("algo", "picola,nova,enc", "comma-separated encoders to audit: picola, nova, enc, optimal")
	random := flag.Int("random", 0, "additionally audit this many random benchgen instances")
	maxSyms := flag.Int("maxsymbols", 10, "symbol-count bound for -random instances")
	seed := flag.Int64("seed", 1, "seed for random instances and randomized encoders")
	meta := flag.Bool("meta", true, "also check the metamorphic invariants")
	timeout := flag.Duration("timeout", 0, "bound the run's wall clock (0 = none)")
	jFlag := par.RegisterFlag(flag.CommandLine)
	var oc obs.Config
	oc.Command = "verify"
	oc.RegisterFlags(flag.CommandLine)
	flag.Parse()
	jWorkers = par.Workers(*jFlag)
	memo = eval.NewCache()
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}

	session, err := oc.Start()
	if err != nil {
		fatal(err)
	}
	httpSrv, err := obshttp.StartContext(runCtx, oc.HTTPAddr, obshttp.Options{})
	if err != nil {
		fatal(err)
	}
	if httpSrv != nil {
		fmt.Fprintf(os.Stderr, "verify: introspection server on http://%s\n", httpSrv.Addr())
	}

	selected, err := selectEncoders(*algo)
	if err != nil {
		fatal(err)
	}

	type instance struct {
		label string
		p     *face.Problem
	}
	var instances []instance
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		p, err := consfile.ParseString(string(data))
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		instances = append(instances, instance{label: path, p: p})
	}
	for i := 0; i < *random; i++ {
		s := *seed + int64(i)
		instances = append(instances, instance{
			label: fmt.Sprintf("random(seed=%d)", s),
			p:     benchgen.RandomProblem(s, *maxSyms),
		})
	}
	if len(instances) == 0 {
		fatal(fmt.Errorf("nothing to audit: pass constraint files and/or -random N"))
	}

	checks, failures := 0, 0
	for _, inst := range instances {
		for _, ef := range selected {
			if ef.name == "optimal" && inst.p.N() > optenc.MaxSymbols {
				fmt.Printf("%-28s %-8s skipped (%d symbols exceed the exhaustive limit %d)\n",
					inst.label, ef.name, inst.p.N(), optenc.MaxSymbols)
				continue
			}
			checks++
			rep := audit(inst.p, ef.run, *seed, *meta)
			if rep.Ok() {
				fmt.Printf("%-28s %-8s ok\n", inst.label, ef.name)
				continue
			}
			failures++
			fmt.Printf("%-28s %-8s FAIL\n", inst.label, ef.name)
			fmt.Fprintln(os.Stderr, "verify:", rep.Err())
			shrunk := verify.Shrink(inst.p, func(q *face.Problem) bool {
				return !audit(q, ef.run, *seed, *meta).Ok()
			}, 0)
			fmt.Fprintf(os.Stderr, "verify: shrunk repro (%s):\n%s", ef.name, verify.Repro(shrunk))
		}
	}
	fmt.Printf("audited %d instance/encoder pairs: %d failed\n", checks, failures)
	_ = httpSrv.Close()
	if err := session.Close(); err != nil {
		fatal(err)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// audit runs the full oracle stack on one instance with one encoder.
func audit(p *face.Problem, run encoderFunc, seed int64, meta bool) *verify.Report {
	rep := &verify.Report{}
	e, err := run(p, seed)
	if err != nil {
		rep.Merge(&verify.Report{Failures: []verify.Failure{{
			Check: "encode", Constraint: -1, Detail: err.Error()}}})
		return rep
	}
	rep.Merge(verify.CheckEncoding(p, e, verify.Options{RequireMinLength: true}))
	rep.Merge(verify.CheckMinimization(p, e, memo))
	rep.Merge(verify.CheckCost(p, e, memo))
	if meta {
		rep.Merge(verify.CheckMetamorphic(p, e, seed))
	}
	return rep
}

// selectEncoders resolves the -algo list against the encoder table,
// preserving the table's fixed order.
func selectEncoders(list string) ([]struct {
	name string
	run  encoderFunc
}, error) {
	want := map[string]bool{}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		known := false
		for _, ef := range encoders {
			if ef.name == name {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown encoder %q (valid: picola, nova, enc, optimal)", name)
		}
		want[name] = true
	}
	var out []struct {
		name string
		run  encoderFunc
	}
	for _, ef := range encoders {
		if want[ef.name] {
			out = append(out, ef)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-algo selected no encoders")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "verify:", err)
	os.Exit(1)
}
