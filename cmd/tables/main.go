// Command tables regenerates the paper's evaluation tables on the
// synthetic benchmark suite.
//
//	tables -table 1    reproduce Table I  (constraint-implementation cubes:
//	                   NOVA vs ENC vs PICOLA at minimum code length)
//	tables -table 2    reproduce Table II (state assignment: two-level size
//	                   and normalized runtime for NOVA-ih, NOVA-ioh, NEW)
//
// Rows print in the paper's order; totals and win/loss summaries follow.
// Absolute values differ from the paper's (the suite is synthetic; see
// DESIGN.md §4) — the comparisons are the reproduction target.
//
// -json FILE additionally writes a machine-readable snapshot of the run
// (per-benchmark cube counts / product terms and encode wall time, tables
// 1 and 2) so BENCH_*.json trajectory files can be populated.
//
//	tables -diff OLD.json NEW.json
//
// compares two snapshots: per-row, per-encoder cube/product deltas (the
// regression gate — they must be all zero) plus the aggregate wall-clock
// speedup of NEW over OLD. A nonzero delta exits 1.
//
// -j N bounds the parallel fan-out (rows, encoders per row, and the
// encoders' internal portfolio/scoring). The default is GOMAXPROCS;
// -j 1 reproduces the sequential execution exactly, and the output is
// byte-identical at every -j (timing columns aside, which are only
// meaningful at -j 1). Observability: -trace, -metrics, -ledger, -http,
// -cpuprofile, -memprofile and -v as in cmd/picola; with -http the
// /progress endpoint reports the live rows-done/rows-total position of
// the running sweep.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"picola/internal/baseline/enc"
	"picola/internal/baseline/nova"
	"picola/internal/benchgen"
	"picola/internal/core"
	"picola/internal/ctxutil"
	"picola/internal/eval"
	"picola/internal/face"
	"picola/internal/obs"
	"picola/internal/obs/obshttp"
	"picola/internal/par"
	"picola/internal/power"
	"picola/internal/report"
	"picola/internal/stassign"
	"picola/internal/symbolic"
	"picola/internal/verify"
)

func main() {
	table := flag.Int("table", 1, "table to regenerate: 1, 2 (paper), 3, 4 (extensions)")
	only := flag.String("fsm", "", "restrict to one benchmark by name")
	seed := flag.Int64("seed", 1, "seed for the randomized baselines")
	encBudget := flag.Int("encbudget", 40000, "ENC espresso-evaluation budget (table 1)")
	jFlag := par.RegisterFlag(flag.CommandLine)
	formatName := flag.String("format", "text", "output format: text, md or csv")
	jsonOut := flag.String("json", "", "write a machine-readable benchmark snapshot to `FILE` (tables 1 and 2)")
	diffMode := flag.Bool("diff", false, "compare two -json snapshots given as `OLD NEW` arguments and report cube/product deltas")
	check := flag.Bool("check", false, "run the semantic verification oracle on every encoding (tables 1 and 2); exit 1 with a shrunk repro on failure")
	timeout := flag.Duration("timeout", 0, "bound the run's wall clock (0 = none)")
	verbose := flag.Bool("v", false, "print a per-stage wall-clock summary to stderr")
	var oc obs.Config
	oc.Command = "tables"
	oc.RegisterFlags(flag.CommandLine)
	flag.Parse()
	var ferr error
	outFormat, ferr = report.ParseFormat(*formatName)
	if ferr != nil {
		fmt.Fprintln(os.Stderr, "tables:", ferr)
		os.Exit(2)
	}
	jWorkers = par.Workers(*jFlag)
	memo = eval.NewCache()
	checkEnabled = *check
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}
	session, serr := oc.Start()
	if serr != nil {
		fmt.Fprintln(os.Stderr, "tables:", serr)
		os.Exit(1)
	}
	tracer = session.Tracer
	httpSrv, herr := obshttp.StartContext(runCtx, oc.HTTPAddr, obshttp.Options{})
	if herr != nil {
		fmt.Fprintln(os.Stderr, "tables:", herr)
		os.Exit(1)
	}
	if httpSrv != nil {
		fmt.Fprintf(os.Stderr, "tables: introspection server on http://%s\n", httpSrv.Addr())
		defer func() { _ = httpSrv.Close() }()
	}
	var err error
	var snap *benchSnapshot
	exitCode := 0
	switch {
	case *diffMode:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "tables: -diff needs exactly two snapshot files: tables -diff OLD.json NEW.json")
			exitCode = 2
		} else {
			exitCode = runDiff(os.Stdout, os.Stderr, flag.Arg(0), flag.Arg(1))
		}
	case *table == 1:
		snap, err = table1(*only, *seed, *encBudget)
	case *table == 2:
		snap, err = table2(*only, *seed)
	case *table == 3:
		err = table3(*only)
	case *table == 4:
		err = table4(*only)
	default:
		err = fmt.Errorf("unknown table %d", *table)
	}
	if err == nil && *jsonOut != "" {
		if snap == nil {
			err = fmt.Errorf("-json supports tables 1 and 2 only")
		} else {
			err = writeSnapshot(*jsonOut, snap)
		}
	}
	if *verbose {
		obs.StageSummary(os.Stderr, obs.Default)
	}
	if cerr := session.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

// tracer is the -trace sink (nil when untraced); threaded into the PICOLA
// encoder runs.
var tracer obs.Tracer

// benchSnapshot is the -json output: a machine-readable record of one
// table run, the unit the BENCH_*.json trajectory files accumulate.
type benchSnapshot struct {
	Schema string     `json:"schema"` // "picola-bench/v1"
	Table  int        `json:"table"`
	Rows   []benchRow `json:"rows"`
}

// benchRow is one benchmark's results across the table's encoders.
type benchRow struct {
	FSM         string               `json:"fsm"`
	Constraints int                  `json:"constraints,omitempty"`
	States      int                  `json:"states,omitempty"`
	Encoders    map[string]benchStat `json:"encoders"`
}

// benchStat is one encoder's measurement on one benchmark. Cubes is the
// Table I constraint-implementation metric; Products the Table II encoded
// two-level size; WallNS the encode wall time.
type benchStat struct {
	Cubes     int   `json:"cubes,omitempty"`
	Products  int   `json:"products,omitempty"`
	WallNS    int64 `json:"wall_ns"`
	Completed *bool `json:"completed,omitempty"`
}

func writeSnapshot(path string, snap *benchSnapshot) error {
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

type table1Row struct {
	name                string
	constraints         int
	novaCubes, picCubes int
	encCubes            int
	encCompleted        bool
	tNova, tEnc, tPic   time.Duration
}

func table1Compute(spec benchgen.Spec, seed int64, encBudget int) (*table1Row, error) {
	m := benchgen.Generate(spec)
	prob, _, err := symbolic.ExtractConstraints(m)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	row := &table1Row{name: spec.Name, constraints: len(prob.Constraints)}
	evalOpts := eval.Options{Cache: memo, Workers: jWorkers}
	// The three encoders are independent given the extracted problem and
	// each writes disjoint fields of row, so they fan out as one unit per
	// encoder. Under -j > 1 the wall-time columns overlap and are only
	// meaningful relative to each other within one run.
	_, err = par.MapContext(runCtx, 3, jWorkers, func(k int) (struct{}, error) {
		var z struct{}
		switch k {
		case 0:
			t0 := time.Now()
			novaEnc, err := nova.Encode(prob, nova.Options{Variant: nova.IHybrid, Seed: seed})
			if err != nil {
				return z, fmt.Errorf("%s nova: %w", spec.Name, err)
			}
			row.tNova = time.Since(t0)
			if err := checkEncoded(spec.Name, "nova", prob, novaEnc, func(q *face.Problem) (*face.Encoding, error) {
				return nova.Encode(q, nova.Options{Variant: nova.IHybrid, Seed: seed})
			}); err != nil {
				return z, err
			}
			novaCost, err := eval.EvaluateContext(runCtx, prob, novaEnc, evalOpts)
			if err != nil {
				return z, err
			}
			row.novaCubes = novaCost.Total
		case 1:
			t0 := time.Now()
			encRes, err := enc.Encode(prob, enc.Options{
				Seed: seed, Budget: encBudget, Workers: jWorkers, Cache: memo})
			if err != nil {
				return z, fmt.Errorf("%s enc: %w", spec.Name, err)
			}
			row.tEnc = time.Since(t0)
			if err := checkEncoded(spec.Name, "enc", prob, encRes.Encoding, func(q *face.Problem) (*face.Encoding, error) {
				r, err := enc.Encode(q, enc.Options{Seed: seed, Budget: encBudget, Workers: jWorkers, Cache: memo})
				if err != nil {
					return nil, err
				}
				return r.Encoding, nil
			}); err != nil {
				return z, err
			}
			row.encCubes = encRes.Cost
			row.encCompleted = encRes.Completed
		case 2:
			t0 := time.Now()
			picRes, err := core.EncodeContext(runCtx, prob, core.Options{
				Trace: tracer, Workers: jWorkers, Cache: memo})
			if err != nil {
				return z, fmt.Errorf("%s picola: %w", spec.Name, err)
			}
			row.tPic = time.Since(t0)
			if err := checkEncoded(spec.Name, "picola", prob, picRes.Encoding, func(q *face.Problem) (*face.Encoding, error) {
				r, err := core.Encode(q, core.Options{Workers: jWorkers, Cache: memo})
				if err != nil {
					return nil, err
				}
				return r.Encoding, nil
			}); err != nil {
				return z, err
			}
			picCost, err := eval.EvaluateContext(runCtx, prob, picRes.Encoding, evalOpts)
			if err != nil {
				return z, err
			}
			row.picCubes = picCost.Total
		}
		return z, nil
	})
	if err != nil {
		return nil, err
	}
	return row, nil
}

func table1(only string, seed int64, encBudget int) (*benchSnapshot, error) {
	tab := &report.Table{
		Title:  "Table I — cubes to implement the group constraints at minimum code length",
		Header: []string{"FSM", "const", "NOVA", "ENC", "PICOLA", "t_nova", "t_enc", "t_picola"},
	}
	var specs []benchgen.Spec
	for _, spec := range benchgen.Table1Specs() {
		if only == "" || spec.Name == only {
			specs = append(specs, spec)
		}
	}
	rows, err := forEach(specs, func(spec benchgen.Spec) (*table1Row, error) {
		return table1Compute(spec, seed, encBudget)
	})
	if err != nil {
		return nil, err
	}
	snap := &benchSnapshot{Schema: "picola-bench/v1", Table: 1}
	var totNova, totEnc, totPic int
	var winsPic, winsNova, encFails int
	encComparable := true
	for _, row := range rows {
		completed := row.encCompleted
		snap.Rows = append(snap.Rows, benchRow{
			FSM:         row.name,
			Constraints: row.constraints,
			Encoders: map[string]benchStat{
				"nova":   {Cubes: row.novaCubes, WallNS: int64(row.tNova)},
				"enc":    {Cubes: row.encCubes, WallNS: int64(row.tEnc), Completed: &completed},
				"picola": {Cubes: row.picCubes, WallNS: int64(row.tPic)},
			},
		})
		encCol := fmt.Sprintf("%d", row.encCubes)
		if !row.encCompleted {
			encCol = "fails"
			encComparable = false
			encFails++
		} else {
			totEnc += row.encCubes
		}
		totNova += row.novaCubes
		totPic += row.picCubes
		switch {
		case row.picCubes < row.novaCubes:
			winsPic++
		case row.novaCubes < row.picCubes:
			winsNova++
		}
		tab.Add(row.name, fmt.Sprint(row.constraints), fmt.Sprint(row.novaCubes), encCol,
			fmt.Sprint(row.picCubes), round(row.tNova).String(), round(row.tEnc).String(),
			round(row.tPic).String())
	}
	tab.Footer = append(tab.Footer, fmt.Sprintf("Totals: NOVA=%d PICOLA=%d (NOVA/PICOLA = %.2f)",
		totNova, totPic, ratio(totNova, totPic)))
	if encComparable {
		tab.Footer = append(tab.Footer, fmt.Sprintf("ENC=%d (completed all instances)", totEnc))
	} else {
		tab.Footer = append(tab.Footer, fmt.Sprintf(
			"ENC failed (budget exhausted) on %d instance(s); completed total=%d", encFails, totEnc))
	}
	tab.Footer = append(tab.Footer, fmt.Sprintf(
		"PICOLA better on %d, NOVA better on %d, ties on the rest", winsPic, winsNova))
	return snap, tab.Render(os.Stdout, outFormat)
}

// table2Row is one benchmark's three state-assignment runs.
type table2Row struct {
	name   string
	states int
	ih     *stassign.Report
	ioh    *stassign.Report
	neu    *stassign.Report
}

func table2Compute(spec benchgen.Spec, seed int64) (*table2Row, error) {
	m := benchgen.Generate(spec)
	// The three assignments only share the machine, which they read; fan
	// them out one unit per encoder.
	encoders := []stassign.Encoder{stassign.NovaIH, stassign.NovaIOH, stassign.Picola}
	reps, err := par.MapContext(runCtx, len(encoders), jWorkers, func(k int) (*stassign.Report, error) {
		o := stassign.Options{Encoder: encoders[k], Seed: seed, Workers: jWorkers, Cache: memo}
		if encoders[k] == stassign.Picola {
			o.Trace = tracer
		}
		rep, err := stassign.AssignContext(runCtx, m, o)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", spec.Name, encoders[k], err)
		}
		if checkEnabled {
			prob, _, err := symbolic.ExtractConstraints(m)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", spec.Name, err)
			}
			// The shrink re-encoder approximates NovaIOH with the
			// input-hybrid objective: output pairs need the machine, which
			// a shrunk constraint instance no longer has.
			reEncode := func(q *face.Problem) (*face.Encoding, error) {
				if encoders[k] == stassign.Picola {
					r, err := core.Encode(q, core.Options{ExactPolishBudget: -1, Workers: jWorkers, Cache: memo})
					if err != nil {
						return nil, err
					}
					return r.Encoding, nil
				}
				return nova.Encode(q, nova.Options{Variant: nova.IHybrid, Seed: seed})
			}
			if err := checkEncoded(spec.Name, fmt.Sprint(encoders[k]), prob, rep.Encoding, reEncode); err != nil {
				return nil, err
			}
		}
		return rep, nil
	})
	if err != nil {
		return nil, err
	}
	return &table2Row{name: spec.Name, states: m.NumStates(),
		ih: reps[0], ioh: reps[1], neu: reps[2]}, nil
}

func table2(only string, seed int64) (*benchSnapshot, error) {
	tab := &report.Table{
		Title:  "Table II — state assignment: two-level size and time, normalized to NOVA-ih",
		Header: []string{"FSM", "ih", "t", "ioh", "t", "NEW", "t"},
	}
	var specs []benchgen.Spec
	for _, spec := range benchgen.Table2Specs() {
		if only == "" || spec.Name == only {
			specs = append(specs, spec)
		}
	}
	rows, err := forEach(specs, func(spec benchgen.Spec) (*table2Row, error) {
		return table2Compute(spec, seed)
	})
	if err != nil {
		return nil, err
	}
	snap := &benchSnapshot{Schema: "picola-bench/v1", Table: 2}
	var totIH, totIOH, totNew int
	for _, row := range rows {
		ih, ioh, neu := row.ih, row.ioh, row.neu
		base := ih.TotalTime
		tab.Add(row.name,
			fmt.Sprint(ih.Products), "1.00",
			fmt.Sprint(ioh.Products), fmt.Sprintf("%.2f", timeRatio(ioh.TotalTime, base)),
			fmt.Sprint(neu.Products), fmt.Sprintf("%.2f", timeRatio(neu.TotalTime, base)))
		snap.Rows = append(snap.Rows, benchRow{
			FSM:    row.name,
			States: row.states,
			Encoders: map[string]benchStat{
				"nova-ih":  {Products: ih.Products, WallNS: int64(ih.TotalTime)},
				"nova-ioh": {Products: ioh.Products, WallNS: int64(ioh.TotalTime)},
				"picola":   {Products: neu.Products, WallNS: int64(neu.TotalTime)},
			},
		})
		totIH += ih.Products
		totIOH += ioh.Products
		totNew += neu.Products
	}
	tab.Footer = append(tab.Footer,
		fmt.Sprintf("Total products: NOVA-ih=%d NOVA-ioh=%d NEW=%d", totIH, totIOH, totNew),
		fmt.Sprintf("Size ratios vs NEW: ih=%.3f ioh=%.3f", ratio(totIH, totNew), ratio(totIOH, totNew)))
	return snap, tab.Render(os.Stdout, outFormat)
}

func timeRatio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func round(d time.Duration) time.Duration { return d.Round(time.Millisecond) }

// table3 is the extension experiment motivating the partial problem: for
// each machine, sweep the code length from the minimum to the width at
// which every face constraint is satisfiable, reporting the constraint
// cost, the encoded machine's product terms, and the PLA area. Full
// satisfaction trades fewer product terms against wider PLAs — usually a
// net loss, which is why minimum-length (partial) encoding is standard.
func table3(only string) error {
	fsms := []string{"bbara", "dk14", "ex3", "opus", "dk16", "keyb"}
	if only != "" {
		fsms = []string{only}
	}
	fmt.Println("Table III (extension) — code length vs. cost trade-off (PICOLA at each length)")
	fmt.Printf("%-10s %4s %7s %10s %10s %9s %14s\n",
		"FSM", "nv", "sat", "cons.cubes", "products", "area", "note")
	for _, name := range fsms {
		spec, ok := benchgen.ByName(name)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", name)
		}
		m := benchgen.Generate(spec)
		prob, _, err := symbolic.ExtractConstraints(m)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		full, err := core.EncodeAllContext(runCtx, prob, core.Options{Workers: jWorkers, Cache: memo})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		maxNV := full.Encoding.NV
		for nv := prob.MinLength(); nv <= maxNV; nv++ {
			var r *core.Result
			if nv == maxNV {
				r = full
			} else {
				r, err = core.EncodeContext(runCtx, prob, core.Options{NV: nv, Workers: jWorkers, Cache: memo})
				if err != nil {
					return fmt.Errorf("%s nv=%d: %w", name, nv, err)
				}
			}
			satisfied := 0
			for _, c := range prob.Constraints {
				if r.Encoding.Satisfied(c) {
					satisfied++
				}
			}
			// The constraint-cube column uses the exact evaluator, which
			// is only cheap at narrow code spaces; wider rows print "-".
			cubesCol := "-"
			if nv <= 11 {
				cost, err := eval.EvaluateContext(runCtx, prob, r.Encoding, eval.Options{Cache: memo, Workers: jWorkers})
				if err != nil {
					return err
				}
				cubesCol = fmt.Sprintf("%d", cost.Total)
			}
			min, _, err := stassign.MinimizeEncodedContext(runCtx, m, r.Encoding)
			if err != nil {
				return fmt.Errorf("%s nv=%d: %w", name, nv, err)
			}
			area := min.Len() * (2*(m.NumInputs+nv) + nv + m.NumOutputs)
			note := ""
			if nv == prob.MinLength() {
				note = "minimum"
			}
			if satisfied == len(prob.Constraints) {
				note = "all satisfied"
			}
			fmt.Printf("%-10s %4d %3d/%-3d %10s %10d %9d %14s\n",
				name, nv, satisfied, len(prob.Constraints),
				cubesCol, min.Len(), area, note)
			if satisfied == len(prob.Constraints) {
				break
			}
		}
		fmt.Println()
	}
	return nil
}

// jWorkers is set from the shared -j flag; memo is the process-wide
// minimization memo-cache every encoder and evaluator run shares
// (memoized counts are pure functions of their key, so sharing never
// changes a result); outFormat from -format; runCtx carries the
// -timeout deadline into every row and encoder run.
var (
	jWorkers  = 1
	memo      *eval.Cache
	outFormat = report.Text
	runCtx    = context.Background()
	// checkEnabled runs the semantic verification oracle on every
	// encoding produced by tables 1 and 2 (-check).
	checkEnabled = false
)

// checkEncoded verifies one encoding against the semantic oracle when
// -check is set. On failure the instance is shrunk (re-encoding with
// reEncode) to a minimal consfile repro embedded in the error.
func checkEncoded(fsm, encName string, prob *face.Problem, e *face.Encoding,
	reEncode func(*face.Problem) (*face.Encoding, error)) error {
	if !checkEnabled {
		return nil
	}
	failed := func(q *face.Problem, qe *face.Encoding) *verify.Report {
		rep := &verify.Report{}
		rep.Merge(verify.CheckEncoding(q, qe, verify.Options{RequireMinLength: true}))
		rep.Merge(verify.CheckMinimization(q, qe, memo))
		return rep
	}
	rep := failed(prob, e)
	if rep.Ok() {
		return nil
	}
	shrunk := verify.Shrink(prob, func(q *face.Problem) bool {
		qe, err := reEncode(q)
		if err != nil {
			return false
		}
		return !failed(q, qe).Ok()
	}, 0)
	return fmt.Errorf("%s %s: -check failed: %w\nshrunk repro:\n%s",
		fsm, encName, rep.Err(), verify.Repro(shrunk))
}

// forEach maps fn over the specs, up to -j concurrently, and returns the
// results in input order with the lowest-index error winning — the
// deterministic row fan-out of the harness.
// Progress gauges: a table run publishes rows-total before fanning out
// and counts rows-done up as workers finish, so the introspection
// server's /progress endpoint shows a live sweep position.
var (
	pDone  = obs.Default.Gauge(obs.ProgressDone)
	pTotal = obs.Default.Gauge(obs.ProgressTotal)
)

func forEach[T any](specs []benchgen.Spec, fn func(benchgen.Spec) (T, error)) ([]T, error) {
	pTotal.Set(int64(len(specs)))
	pDone.Set(0)
	return par.MapContext(runCtx, len(specs), jWorkers, func(i int) (T, error) {
		// Per-row deadline check: a cancelled sweep stops handing out rows
		// and the harness reports the context error instead of a table.
		var zero T
		if err := ctxutil.Check(runCtx, "tables.row"); err != nil {
			return zero, err
		}
		r, err := fn(specs[i])
		pDone.Add(1)
		return r, err
	})
}

// readSnapshot loads and sanity-checks a -json benchmark snapshot.
func readSnapshot(path string) (*benchSnapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap benchSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if snap.Schema != "picola-bench/v1" {
		return nil, fmt.Errorf("%s: unsupported schema %q", path, snap.Schema)
	}
	return &snap, nil
}

// runDiff drives a -diff comparison and maps the outcome to the exit
// code contract: 0 when the snapshots agree on every quality metric, 1
// on any delta, 2 when a snapshot is unreadable, malformed, or the two
// are not comparable.
func runDiff(w, errw io.Writer, oldPath, newPath string) int {
	mismatches, err := diffSnapshots(w, oldPath, newPath)
	if err != nil {
		fmt.Fprintln(errw, "tables:", err)
		return 2
	}
	if mismatches > 0 {
		fmt.Fprintf(errw, "tables: %d mismatch(es) between %s and %s\n", mismatches, oldPath, newPath)
		return 1
	}
	return 0
}

// diffSnapshots compares two -json snapshots of the same table. Quality
// metrics (cubes, products) are the regression gate: any per-row,
// per-encoder delta is reported and counted. Wall times are expected to
// move — the summary line reports the aggregate speedup of new over old
// instead. Rows pair by FSM name in the old snapshot's order; encoders
// print in sorted-name order. The error return is reserved for unusable
// input (unreadable file, malformed JSON, schema or table mismatch).
func diffSnapshots(w io.Writer, oldPath, newPath string) (int, error) {
	oldSnap, err := readSnapshot(oldPath)
	if err != nil {
		return 0, err
	}
	newSnap, err := readSnapshot(newPath)
	if err != nil {
		return 0, err
	}
	if oldSnap.Table != newSnap.Table {
		return 0, fmt.Errorf("snapshots are of different tables: %d vs %d", oldSnap.Table, newSnap.Table)
	}
	newRows := make(map[string]benchRow, len(newSnap.Rows))
	for _, r := range newSnap.Rows {
		newRows[r.FSM] = r
	}
	var oldWall, newWall int64
	stats, mismatches := 0, 0
	for _, or := range oldSnap.Rows {
		nr, ok := newRows[or.FSM]
		if !ok {
			fmt.Fprintf(w, "%-12s missing from %s\n", or.FSM, newPath)
			mismatches++
			continue
		}
		delete(newRows, or.FSM)
		names := make([]string, 0, len(or.Encoders))
		for name := range or.Encoders {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ns, ok := nr.Encoders[name]
			if !ok {
				fmt.Fprintf(w, "%-12s %-10s missing from %s\n", or.FSM, name, newPath)
				mismatches++
				continue
			}
			os1 := or.Encoders[name]
			stats++
			oldWall += os1.WallNS
			newWall += ns.WallNS
			if dc, dp := ns.Cubes-os1.Cubes, ns.Products-os1.Products; dc != 0 || dp != 0 {
				fmt.Fprintf(w, "%-12s %-10s cubes %d -> %d (%+d)  products %d -> %d (%+d)\n",
					or.FSM, name, os1.Cubes, ns.Cubes, dc, os1.Products, ns.Products, dp)
				mismatches++
			}
		}
		for name := range nr.Encoders {
			if _, ok := or.Encoders[name]; !ok {
				fmt.Fprintf(w, "%-12s %-10s only in %s\n", or.FSM, name, newPath)
				mismatches++
			}
		}
	}
	extra := make([]string, 0, len(newRows))
	for fsm := range newRows {
		extra = append(extra, fsm)
	}
	sort.Strings(extra)
	for _, fsm := range extra {
		fmt.Fprintf(w, "%-12s only in %s\n", fsm, newPath)
		mismatches++
	}
	fmt.Fprintf(w, "table %d: %d rows, %d measurements compared, %d mismatches\n",
		oldSnap.Table, len(oldSnap.Rows), stats, mismatches)
	if newWall > 0 {
		fmt.Fprintf(w, "wall: old=%v new=%v speedup=%.2fx\n",
			time.Duration(oldWall).Round(time.Millisecond),
			time.Duration(newWall).Round(time.Millisecond),
			float64(oldWall)/float64(newWall))
	}
	return mismatches, nil
}

// table4 is the power extension experiment: the switching activity of the
// state register (expected flip-flop toggles per cycle under random
// inputs, Markov steady state) and the product-term cost, for PICOLA's
// area-driven codes versus the low-power annealer's codes. The classical
// result reproduced here is the tension between the two objectives.
func table4(only string) error {
	fsms := []string{"bbara", "dk14", "ex3", "opus", "keyb", "dk16", "planet"}
	if only != "" {
		fsms = []string{only}
	}
	tab := &report.Table{
		Title:  "Table IV (extension) — area-driven vs low-power state codes",
		Header: []string{"FSM", "act(picola)", "products", "act(power)", "products", "act.save"},
	}
	for _, name := range fsms {
		spec, ok := benchgen.ByName(name)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", name)
		}
		m := benchgen.Generate(spec)
		mod, err := power.Build(m)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rep, err := stassign.AssignContext(runCtx, m, stassign.Options{Encoder: stassign.Picola,
			Workers: jWorkers, Cache: memo})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		low, err := power.Encode(mod, power.Options{Seed: 1})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		minLow, _, err := stassign.MinimizeEncodedContext(runCtx, m, low)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		actPic := mod.Activity(rep.Encoding)
		actLow := mod.Activity(low)
		save := 0.0
		if actPic > 0 {
			save = 100 * (actPic - actLow) / actPic
		}
		tab.Add(name, fmt.Sprintf("%.3f", actPic), fmt.Sprint(rep.Products),
			fmt.Sprintf("%.3f", actLow), fmt.Sprint(minLow.Len()),
			fmt.Sprintf("%.1f%%", save))
	}
	return tab.Render(os.Stdout, outFormat)
}
