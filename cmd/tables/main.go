// Command tables regenerates the paper's evaluation tables on the
// synthetic benchmark suite.
//
//	tables -table 1    reproduce Table I  (constraint-implementation cubes:
//	                   NOVA vs ENC vs PICOLA at minimum code length)
//	tables -table 2    reproduce Table II (state assignment: two-level size
//	                   and normalized runtime for NOVA-ih, NOVA-ioh, NEW)
//
// Rows print in the paper's order; totals and win/loss summaries follow.
// Absolute values differ from the paper's (the suite is synthetic; see
// DESIGN.md §4) — the comparisons are the reproduction target.
//
// -json FILE additionally writes a machine-readable snapshot of the run
// (per-benchmark cube counts / product terms and encode wall time, tables
// 1 and 2) so BENCH_*.json trajectory files can be populated.
// Observability: -trace, -metrics, -cpuprofile, -memprofile and -v as in
// cmd/picola.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"picola/internal/baseline/enc"
	"picola/internal/baseline/nova"
	"picola/internal/benchgen"
	"picola/internal/core"
	"picola/internal/eval"
	"picola/internal/obs"
	"picola/internal/power"
	"picola/internal/report"
	"picola/internal/stassign"
	"picola/internal/symbolic"
)

func main() {
	table := flag.Int("table", 1, "table to regenerate: 1, 2 (paper), 3, 4 (extensions)")
	only := flag.String("fsm", "", "restrict to one benchmark by name")
	seed := flag.Int64("seed", 1, "seed for the randomized baselines")
	encBudget := flag.Int("encbudget", 40000, "ENC espresso-evaluation budget (table 1)")
	workers := flag.Int("workers", 1, "benchmarks evaluated concurrently (timing columns are only meaningful at 1)")
	formatName := flag.String("format", "text", "output format: text, md or csv")
	jsonOut := flag.String("json", "", "write a machine-readable benchmark snapshot to `FILE` (tables 1 and 2)")
	verbose := flag.Bool("v", false, "print a per-stage wall-clock summary to stderr")
	var oc obs.Config
	oc.RegisterFlags(flag.CommandLine)
	flag.Parse()
	var ferr error
	outFormat, ferr = report.ParseFormat(*formatName)
	if ferr != nil {
		fmt.Fprintln(os.Stderr, "tables:", ferr)
		os.Exit(2)
	}
	maxWorkers = *workers
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	session, serr := oc.Start()
	if serr != nil {
		fmt.Fprintln(os.Stderr, "tables:", serr)
		os.Exit(1)
	}
	tracer = session.Tracer
	var err error
	var snap *benchSnapshot
	switch *table {
	case 1:
		snap, err = table1(*only, *seed, *encBudget)
	case 2:
		snap, err = table2(*only, *seed)
	case 3:
		err = table3(*only)
	case 4:
		err = table4(*only)
	default:
		err = fmt.Errorf("unknown table %d", *table)
	}
	if err == nil && *jsonOut != "" {
		if snap == nil {
			err = fmt.Errorf("-json supports tables 1 and 2 only")
		} else {
			err = writeSnapshot(*jsonOut, snap)
		}
	}
	if *verbose {
		obs.StageSummary(os.Stderr, obs.Default)
	}
	if cerr := session.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

// tracer is the -trace sink (nil when untraced); threaded into the PICOLA
// encoder runs.
var tracer obs.Tracer

// benchSnapshot is the -json output: a machine-readable record of one
// table run, the unit the BENCH_*.json trajectory files accumulate.
type benchSnapshot struct {
	Schema string     `json:"schema"` // "picola-bench/v1"
	Table  int        `json:"table"`
	Rows   []benchRow `json:"rows"`
}

// benchRow is one benchmark's results across the table's encoders.
type benchRow struct {
	FSM         string               `json:"fsm"`
	Constraints int                  `json:"constraints,omitempty"`
	States      int                  `json:"states,omitempty"`
	Encoders    map[string]benchStat `json:"encoders"`
}

// benchStat is one encoder's measurement on one benchmark. Cubes is the
// Table I constraint-implementation metric; Products the Table II encoded
// two-level size; WallNS the encode wall time.
type benchStat struct {
	Cubes     int   `json:"cubes,omitempty"`
	Products  int   `json:"products,omitempty"`
	WallNS    int64 `json:"wall_ns"`
	Completed *bool `json:"completed,omitempty"`
}

func writeSnapshot(path string, snap *benchSnapshot) error {
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

type table1Row struct {
	name                string
	constraints         int
	novaCubes, picCubes int
	encCubes            int
	encCompleted        bool
	tNova, tEnc, tPic   time.Duration
}

func table1Compute(spec benchgen.Spec, seed int64, encBudget int) (*table1Row, error) {
	m := benchgen.Generate(spec)
	prob, _, err := symbolic.ExtractConstraints(m)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	row := &table1Row{name: spec.Name, constraints: len(prob.Constraints)}

	t0 := time.Now()
	novaEnc, err := nova.Encode(prob, nova.Options{Variant: nova.IHybrid, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("%s nova: %w", spec.Name, err)
	}
	row.tNova = time.Since(t0)
	novaCost, err := eval.Evaluate(prob, novaEnc)
	if err != nil {
		return nil, err
	}
	row.novaCubes = novaCost.Total

	t0 = time.Now()
	encRes, err := enc.Encode(prob, enc.Options{Seed: seed, Budget: encBudget})
	if err != nil {
		return nil, fmt.Errorf("%s enc: %w", spec.Name, err)
	}
	row.tEnc = time.Since(t0)
	row.encCubes = encRes.Cost
	row.encCompleted = encRes.Completed

	t0 = time.Now()
	picRes, err := core.Encode(prob, core.Options{Trace: tracer})
	if err != nil {
		return nil, fmt.Errorf("%s picola: %w", spec.Name, err)
	}
	row.tPic = time.Since(t0)
	picCost, err := eval.Evaluate(prob, picRes.Encoding)
	if err != nil {
		return nil, err
	}
	row.picCubes = picCost.Total
	return row, nil
}

func table1(only string, seed int64, encBudget int) (*benchSnapshot, error) {
	tab := &report.Table{
		Title:  "Table I — cubes to implement the group constraints at minimum code length",
		Header: []string{"FSM", "const", "NOVA", "ENC", "PICOLA", "t_nova", "t_enc", "t_picola"},
	}
	var specs []benchgen.Spec
	for _, spec := range benchgen.Table1Specs() {
		if only == "" || spec.Name == only {
			specs = append(specs, spec)
		}
	}
	rows, err := forEach(specs, func(spec benchgen.Spec) (*table1Row, error) {
		return table1Compute(spec, seed, encBudget)
	})
	if err != nil {
		return nil, err
	}
	snap := &benchSnapshot{Schema: "picola-bench/v1", Table: 1}
	var totNova, totEnc, totPic int
	var winsPic, winsNova, encFails int
	encComparable := true
	for _, row := range rows {
		completed := row.encCompleted
		snap.Rows = append(snap.Rows, benchRow{
			FSM:         row.name,
			Constraints: row.constraints,
			Encoders: map[string]benchStat{
				"nova":   {Cubes: row.novaCubes, WallNS: int64(row.tNova)},
				"enc":    {Cubes: row.encCubes, WallNS: int64(row.tEnc), Completed: &completed},
				"picola": {Cubes: row.picCubes, WallNS: int64(row.tPic)},
			},
		})
		encCol := fmt.Sprintf("%d", row.encCubes)
		if !row.encCompleted {
			encCol = "fails"
			encComparable = false
			encFails++
		} else {
			totEnc += row.encCubes
		}
		totNova += row.novaCubes
		totPic += row.picCubes
		switch {
		case row.picCubes < row.novaCubes:
			winsPic++
		case row.novaCubes < row.picCubes:
			winsNova++
		}
		tab.Add(row.name, fmt.Sprint(row.constraints), fmt.Sprint(row.novaCubes), encCol,
			fmt.Sprint(row.picCubes), round(row.tNova).String(), round(row.tEnc).String(),
			round(row.tPic).String())
	}
	tab.Footer = append(tab.Footer, fmt.Sprintf("Totals: NOVA=%d PICOLA=%d (NOVA/PICOLA = %.2f)",
		totNova, totPic, ratio(totNova, totPic)))
	if encComparable {
		tab.Footer = append(tab.Footer, fmt.Sprintf("ENC=%d (completed all instances)", totEnc))
	} else {
		tab.Footer = append(tab.Footer, fmt.Sprintf(
			"ENC failed (budget exhausted) on %d instance(s); completed total=%d", encFails, totEnc))
	}
	tab.Footer = append(tab.Footer, fmt.Sprintf(
		"PICOLA better on %d, NOVA better on %d, ties on the rest", winsPic, winsNova))
	return snap, tab.Render(os.Stdout, outFormat)
}

func table2(only string, seed int64) (*benchSnapshot, error) {
	tab := &report.Table{
		Title:  "Table II — state assignment: two-level size and time, normalized to NOVA-ih",
		Header: []string{"FSM", "ih", "t", "ioh", "t", "NEW", "t"},
	}
	snap := &benchSnapshot{Schema: "picola-bench/v1", Table: 2}
	var totIH, totIOH, totNew int
	for _, spec := range benchgen.Table2Specs() {
		if only != "" && spec.Name != only {
			continue
		}
		m := benchgen.Generate(spec)
		ih, err := stassign.Assign(m, stassign.Options{Encoder: stassign.NovaIH, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("%s ih: %w", spec.Name, err)
		}
		ioh, err := stassign.Assign(m, stassign.Options{Encoder: stassign.NovaIOH, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("%s ioh: %w", spec.Name, err)
		}
		neu, err := stassign.Assign(m, stassign.Options{Encoder: stassign.Picola, Seed: seed, Trace: tracer})
		if err != nil {
			return nil, fmt.Errorf("%s new: %w", spec.Name, err)
		}
		base := ih.TotalTime
		tab.Add(spec.Name,
			fmt.Sprint(ih.Products), "1.00",
			fmt.Sprint(ioh.Products), fmt.Sprintf("%.2f", timeRatio(ioh.TotalTime, base)),
			fmt.Sprint(neu.Products), fmt.Sprintf("%.2f", timeRatio(neu.TotalTime, base)))
		snap.Rows = append(snap.Rows, benchRow{
			FSM:    spec.Name,
			States: m.NumStates(),
			Encoders: map[string]benchStat{
				"nova-ih":  {Products: ih.Products, WallNS: int64(ih.TotalTime)},
				"nova-ioh": {Products: ioh.Products, WallNS: int64(ioh.TotalTime)},
				"picola":   {Products: neu.Products, WallNS: int64(neu.TotalTime)},
			},
		})
		totIH += ih.Products
		totIOH += ioh.Products
		totNew += neu.Products
	}
	tab.Footer = append(tab.Footer,
		fmt.Sprintf("Total products: NOVA-ih=%d NOVA-ioh=%d NEW=%d", totIH, totIOH, totNew),
		fmt.Sprintf("Size ratios vs NEW: ih=%.3f ioh=%.3f", ratio(totIH, totNew), ratio(totIOH, totNew)))
	return snap, tab.Render(os.Stdout, outFormat)
}

func timeRatio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func round(d time.Duration) time.Duration { return d.Round(time.Millisecond) }

// table3 is the extension experiment motivating the partial problem: for
// each machine, sweep the code length from the minimum to the width at
// which every face constraint is satisfiable, reporting the constraint
// cost, the encoded machine's product terms, and the PLA area. Full
// satisfaction trades fewer product terms against wider PLAs — usually a
// net loss, which is why minimum-length (partial) encoding is standard.
func table3(only string) error {
	fsms := []string{"bbara", "dk14", "ex3", "opus", "dk16", "keyb"}
	if only != "" {
		fsms = []string{only}
	}
	fmt.Println("Table III (extension) — code length vs. cost trade-off (PICOLA at each length)")
	fmt.Printf("%-10s %4s %7s %10s %10s %9s %14s\n",
		"FSM", "nv", "sat", "cons.cubes", "products", "area", "note")
	for _, name := range fsms {
		spec, ok := benchgen.ByName(name)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", name)
		}
		m := benchgen.Generate(spec)
		prob, _, err := symbolic.ExtractConstraints(m)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		full, err := core.EncodeAll(prob)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		maxNV := full.Encoding.NV
		for nv := prob.MinLength(); nv <= maxNV; nv++ {
			var r *core.Result
			if nv == maxNV {
				r = full
			} else {
				r, err = core.Encode(prob, core.Options{NV: nv})
				if err != nil {
					return fmt.Errorf("%s nv=%d: %w", name, nv, err)
				}
			}
			satisfied := 0
			for _, c := range prob.Constraints {
				if r.Encoding.Satisfied(c) {
					satisfied++
				}
			}
			// The constraint-cube column uses the exact evaluator, which
			// is only cheap at narrow code spaces; wider rows print "-".
			cubesCol := "-"
			if nv <= 11 {
				cost, err := eval.Evaluate(prob, r.Encoding)
				if err != nil {
					return err
				}
				cubesCol = fmt.Sprintf("%d", cost.Total)
			}
			min, _, err := stassign.MinimizeEncoded(m, r.Encoding)
			if err != nil {
				return fmt.Errorf("%s nv=%d: %w", name, nv, err)
			}
			area := min.Len() * (2*(m.NumInputs+nv) + nv + m.NumOutputs)
			note := ""
			if nv == prob.MinLength() {
				note = "minimum"
			}
			if satisfied == len(prob.Constraints) {
				note = "all satisfied"
			}
			fmt.Printf("%-10s %4d %3d/%-3d %10s %10d %9d %14s\n",
				name, nv, satisfied, len(prob.Constraints),
				cubesCol, min.Len(), area, note)
			if satisfied == len(prob.Constraints) {
				break
			}
		}
		fmt.Println()
	}
	return nil
}

// maxWorkers is set from the -workers flag; outFormat from -format.
var (
	maxWorkers = 1
	outFormat  = report.Text
)

// forEach maps fn over the specs, up to maxWorkers concurrently, and
// returns the results in input order. The first error wins.
func forEach[T any](specs []benchgen.Spec, fn func(benchgen.Spec) (T, error)) ([]T, error) {
	results := make([]T, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, maxWorkers)
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec benchgen.Spec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = fn(spec)
		}(i, spec)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// table4 is the power extension experiment: the switching activity of the
// state register (expected flip-flop toggles per cycle under random
// inputs, Markov steady state) and the product-term cost, for PICOLA's
// area-driven codes versus the low-power annealer's codes. The classical
// result reproduced here is the tension between the two objectives.
func table4(only string) error {
	fsms := []string{"bbara", "dk14", "ex3", "opus", "keyb", "dk16", "planet"}
	if only != "" {
		fsms = []string{only}
	}
	tab := &report.Table{
		Title:  "Table IV (extension) — area-driven vs low-power state codes",
		Header: []string{"FSM", "act(picola)", "products", "act(power)", "products", "act.save"},
	}
	for _, name := range fsms {
		spec, ok := benchgen.ByName(name)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", name)
		}
		m := benchgen.Generate(spec)
		mod, err := power.Build(m)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rep, err := stassign.Assign(m, stassign.Options{Encoder: stassign.Picola})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		low, err := power.Encode(mod, power.Options{Seed: 1})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		minLow, _, err := stassign.MinimizeEncoded(m, low)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		actPic := mod.Activity(rep.Encoding)
		actLow := mod.Activity(low)
		save := 0.0
		if actPic > 0 {
			save = 100 * (actPic - actLow) / actPic
		}
		tab.Add(name, fmt.Sprintf("%.3f", actPic), fmt.Sprint(rep.Products),
			fmt.Sprintf("%.3f", actLow), fmt.Sprint(minLow.Len()),
			fmt.Sprintf("%.1f%%", save))
	}
	return tab.Render(os.Stdout, outFormat)
}
