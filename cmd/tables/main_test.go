package main

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"picola/internal/benchgen"
)

// TestDiffExitCodes pins the -diff exit-code contract: 0 when the
// snapshots agree on every quality metric, 1 on any delta (including
// missing rows), 2 when a snapshot is unusable.
func TestDiffExitCodes(t *testing.T) {
	td := func(name string) string { return filepath.Join("testdata", name) }
	cases := []struct {
		name     string
		oldPath  string
		newPath  string
		wantCode int
		wantOut  string // substring of stdout, "" to skip
		wantErr  string // substring of stderr, "" to skip
	}{
		{"identical", "diff_old.json", "diff_old.json", 0, "0 mismatches", ""},
		{"wall-time-only", "diff_old.json", "diff_same.json", 0, "4 measurements compared, 0 mismatches", ""},
		{"cube-delta", "diff_old.json", "diff_delta.json", 1, "cubes 4 -> 6 (+2)", "1 mismatch(es)"},
		{"missing-row", "diff_old.json", "diff_missing_row.json", 1, "beta", "1 mismatch(es)"},
		{"extra-row", "diff_missing_row.json", "diff_old.json", 1, "only in", "1 mismatch(es)"},
		{"malformed-new", "diff_old.json", "diff_malformed.json", 2, "", "diff_malformed.json"},
		{"malformed-old", "diff_malformed.json", "diff_old.json", 2, "", "diff_malformed.json"},
		{"bad-schema", "diff_old.json", "diff_badschema.json", 2, "", "unsupported schema"},
		{"unreadable", "diff_old.json", "diff_nonexistent.json", 2, "", "diff_nonexistent.json"},
		{"table-mismatch", "diff_old.json", "diff_table2.json", 2, "", "different tables"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			code := runDiff(&out, &errw, td(tc.oldPath), td(tc.newPath))
			if code != tc.wantCode {
				t.Fatalf("exit code %d, want %d\nstdout:\n%s\nstderr:\n%s",
					code, tc.wantCode, out.String(), errw.String())
			}
			if tc.wantOut != "" && !strings.Contains(out.String(), tc.wantOut) {
				t.Fatalf("stdout missing %q:\n%s", tc.wantOut, out.String())
			}
			if tc.wantErr != "" && !strings.Contains(errw.String(), tc.wantErr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantErr, errw.String())
			}
		})
	}
}

// TestForEachHonorsCancelledContext is the -timeout regression test for
// the row harness: with the run context already cancelled, forEach must
// run zero rows and report the wrapped context error instead of a
// zero-filled result slice.
func TestForEachHonorsCancelledContext(t *testing.T) {
	prev := runCtx
	t.Cleanup(func() { runCtx = prev })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runCtx = ctx
	specs := benchgen.Table1Specs()
	ran := 0
	_, err := forEach(specs, func(benchgen.Spec) (int, error) {
		ran++
		return 0, nil
	})
	if err == nil {
		t.Fatal("forEach returned success under a cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d rows ran under a cancelled context", ran)
	}
}

// TestForEachCancelMidSweep cancels after the first row: the sweep must
// stop early (strictly fewer rows than specs) and report the sentinel.
func TestForEachCancelMidSweep(t *testing.T) {
	prev, prevW := runCtx, jWorkers
	t.Cleanup(func() { runCtx, jWorkers = prev, prevW })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runCtx = ctx
	jWorkers = 1
	specs := benchgen.Table1Specs()
	if len(specs) < 2 {
		t.Skip("needs at least two specs")
	}
	ran := 0
	_, err := forEach(specs, func(benchgen.Spec) (int, error) {
		ran++
		cancel()
		return 0, nil
	})
	if err == nil {
		t.Fatal("forEach returned success after mid-sweep cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if ran != 1 {
		t.Fatalf("ran %d rows after cancelling on the first, want 1", ran)
	}
}
