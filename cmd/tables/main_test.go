package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestDiffExitCodes pins the -diff exit-code contract: 0 when the
// snapshots agree on every quality metric, 1 on any delta (including
// missing rows), 2 when a snapshot is unusable.
func TestDiffExitCodes(t *testing.T) {
	td := func(name string) string { return filepath.Join("testdata", name) }
	cases := []struct {
		name     string
		oldPath  string
		newPath  string
		wantCode int
		wantOut  string // substring of stdout, "" to skip
		wantErr  string // substring of stderr, "" to skip
	}{
		{"identical", "diff_old.json", "diff_old.json", 0, "0 mismatches", ""},
		{"wall-time-only", "diff_old.json", "diff_same.json", 0, "4 measurements compared, 0 mismatches", ""},
		{"cube-delta", "diff_old.json", "diff_delta.json", 1, "cubes 4 -> 6 (+2)", "1 mismatch(es)"},
		{"missing-row", "diff_old.json", "diff_missing_row.json", 1, "beta", "1 mismatch(es)"},
		{"extra-row", "diff_missing_row.json", "diff_old.json", 1, "only in", "1 mismatch(es)"},
		{"malformed-new", "diff_old.json", "diff_malformed.json", 2, "", "diff_malformed.json"},
		{"malformed-old", "diff_malformed.json", "diff_old.json", 2, "", "diff_malformed.json"},
		{"bad-schema", "diff_old.json", "diff_badschema.json", 2, "", "unsupported schema"},
		{"unreadable", "diff_old.json", "diff_nonexistent.json", 2, "", "diff_nonexistent.json"},
		{"table-mismatch", "diff_old.json", "diff_table2.json", 2, "", "different tables"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			code := runDiff(&out, &errw, td(tc.oldPath), td(tc.newPath))
			if code != tc.wantCode {
				t.Fatalf("exit code %d, want %d\nstdout:\n%s\nstderr:\n%s",
					code, tc.wantCode, out.String(), errw.String())
			}
			if tc.wantOut != "" && !strings.Contains(out.String(), tc.wantOut) {
				t.Fatalf("stdout missing %q:\n%s", tc.wantOut, out.String())
			}
			if tc.wantErr != "" && !strings.Contains(errw.String(), tc.wantErr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantErr, errw.String())
			}
		})
	}
}
