// Command picola encodes a set of symbols under face constraints using
// minimum code length.
//
// The input (stdin or a file argument) is a constraint-matrix file (see
// internal/consfile):
//
//	# comment
//	.symbols s1 s2 s3 s4 s5     (optional; defaults to S0..Sn-1)
//	11000                        one row per group constraint; a trailing
//	00110 2                      integer is the constraint's weight
//
// Flags select the algorithm (picola, nova, enc, optimal, all), an
// optional code-length override, and whether to print the per-constraint
// cube evaluation. "optimal" is the exhaustive reference (≤ 8 symbols);
// "all" grows the length until every constraint is satisfied. The whole
// run goes through the public picola package: the CLI is a thin shell
// over picola.Encode.
//
// -timeout D bounds the run's wall clock; a run past the deadline exits
// with an error wrapping context.DeadlineExceeded and prints no partial
// encoding (the cancellation contract of DESIGN.md §14).
//
// -j N bounds the encoders' internal parallel fan-out (the PICOLA
// portfolio, ENC's candidate scoring, the evaluator); the default is
// GOMAXPROCS and -j 1 reproduces the sequential execution — the output
// is identical either way.
//
// Observability: -trace FILE streams structured JSONL span/event records
// for every pipeline stage (restart, column, classify, guide, polish),
// -metrics FILE writes the metrics-registry snapshot at exit, -ledger
// FILE writes the per-run ledger record (per-stage profile, percentile
// histograms, cache hit rates), -http ADDR serves the live introspection
// endpoints (/metrics, /runs, /progress, /healthz, /debug/pprof) for the
// duration of the run, -cpuprofile and -memprofile write pprof profiles,
// and -v prints a per-stage wall-clock summary to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"picola"
	"picola/internal/consfile"
	"picola/internal/face"
	"picola/internal/obs"
	"picola/internal/obs/obshttp"
	"picola/internal/par"
	"picola/internal/verify"
)

func main() {
	algo := flag.String("algo", "picola", "encoder: "+strings.Join(picola.Algorithms(), ", "))
	nv := flag.Int("nv", 0, "code length override (0 = minimum)")
	seed := flag.Int64("seed", 1, "seed for the randomized encoders")
	evaluate := flag.Bool("eval", true, "print the per-constraint cube evaluation")
	check := flag.Bool("check", false, "run the semantic verification oracle on the encoding; exit 1 with a shrunk repro on failure")
	timeout := flag.Duration("timeout", 0, "bound the run's wall clock (0 = none)")
	jFlag := par.RegisterFlag(flag.CommandLine)
	verbose := flag.Bool("v", false, "print a per-stage wall-clock summary to stderr")
	var oc obs.Config
	oc.Command = "picola"
	oc.RegisterFlags(flag.CommandLine)
	flag.Parse()

	// Validate -algo before touching the input so a typo fails fast with
	// the valid set instead of falling through mid-run.
	if !validAlgo(*algo) {
		fmt.Fprintf(os.Stderr, "picola: unknown -algo %q (valid: %s)\n",
			*algo, strings.Join(picola.Algorithms(), ", "))
		flag.Usage()
		os.Exit(2)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	session, err := oc.Start()
	if err != nil {
		fatal(err)
	}
	httpSrv, err := obshttp.StartContext(ctx, oc.HTTPAddr, obshttp.Options{})
	if err != nil {
		fatal(err)
	}
	if httpSrv != nil {
		fmt.Fprintf(os.Stderr, "picola: introspection server on http://%s\n", httpSrv.Addr())
		defer func() { _ = httpSrv.Close() }()
	}

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	p, err := consfile.Parse(in)
	if err != nil {
		fatal(err)
	}
	memo := picola.NewCache()
	opts := picola.Options{
		Algorithm: *algo,
		NV:        *nv,
		Seed:      *seed,
		Workers:   par.Workers(*jFlag),
		Cache:     memo,
		Trace:     session.Tracer,
		Evaluate:  *evaluate,
	}
	res, err := picola.Encode(ctx, p, opts)
	if err != nil {
		fatal(err)
	}
	for _, w := range res.Warnings {
		fmt.Fprintln(os.Stderr, "picola:", w)
	}
	e := res.Encoding
	if *check {
		// The minimum-length invariant only holds when the length was not
		// overridden and the encoder targets it ("all" grows the length).
		vopts := verify.Options{RequireMinLength: *nv == 0 && *algo != "all"}
		rep := &verify.Report{}
		rep.Merge(verify.CheckEncoding(p, e, vopts))
		rep.Merge(verify.CheckMinimization(p, e, memo))
		rep.Merge(verify.CheckCost(p, e, memo))
		if !rep.Ok() {
			fmt.Fprintln(os.Stderr, "picola: -check failed:", rep.Err())
			reopts := opts
			reopts.Trace = nil
			reopts.Evaluate = false
			shrunk := verify.Shrink(p, func(q *face.Problem) bool {
				qr, err := picola.Encode(ctx, q, reopts)
				if err != nil {
					return false
				}
				bad := &verify.Report{}
				bad.Merge(verify.CheckEncoding(q, qr.Encoding, vopts))
				bad.Merge(verify.CheckMinimization(q, qr.Encoding, memo))
				bad.Merge(verify.CheckCost(q, qr.Encoding, memo))
				return !bad.Ok()
			}, 0)
			fmt.Fprintf(os.Stderr, "picola: shrunk repro:\n%s", verify.Repro(shrunk))
			if err := session.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "picola:", err)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "picola: -check passed")
	}
	for s := 0; s < p.N(); s++ {
		fmt.Printf("%-12s %s\n", p.Names[s], e.CodeString(s))
	}
	if *evaluate {
		c := res.Cost
		fmt.Printf("\nconstraints: %d  satisfied: %d  cubes: %d (weighted %d)\n",
			len(p.Constraints), c.SatisfiedCount, c.Total, c.WeightedTotal)
		for i, k := range c.Cubes {
			status := "satisfied"
			if !e.Satisfied(p.Constraints[i]) {
				status = "violated"
			}
			fmt.Printf("  %s  cubes=%d  %s\n", p.Constraints[i], k, status)
		}
	}
	if *verbose {
		obs.StageSummary(os.Stderr, obs.Default)
	}
	if err := session.Close(); err != nil {
		fatal(err)
	}
}

func validAlgo(name string) bool {
	for _, a := range picola.Algorithms() {
		if a == name {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "picola:", err)
	os.Exit(1)
}
