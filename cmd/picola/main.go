// Command picola encodes a set of symbols under face constraints using
// minimum code length.
//
// The input (stdin or a file argument) is a constraint-matrix file (see
// internal/consfile):
//
//	# comment
//	.symbols s1 s2 s3 s4 s5     (optional; defaults to S0..Sn-1)
//	11000                        one row per group constraint; a trailing
//	00110 2                      integer is the constraint's weight
//
// Flags select the algorithm (picola, nova, enc, optimal, all), an
// optional code-length override, and whether to print the per-constraint
// cube evaluation. "optimal" is the exhaustive reference (≤ 8 symbols);
// "all" grows the length until every constraint is satisfied.
//
// -j N bounds the encoders' internal parallel fan-out (the PICOLA
// portfolio, ENC's candidate scoring, the evaluator); the default is
// GOMAXPROCS and -j 1 reproduces the sequential execution — the output
// is identical either way.
//
// Observability: -trace FILE streams structured JSONL span/event records
// for every pipeline stage (restart, column, classify, guide, polish),
// -metrics FILE writes the metrics-registry snapshot at exit, -ledger
// FILE writes the per-run ledger record (per-stage profile, percentile
// histograms, cache hit rates), -http ADDR serves the live introspection
// endpoints (/metrics, /runs, /progress, /healthz, /debug/pprof) for the
// duration of the run, -cpuprofile and -memprofile write pprof profiles,
// and -v prints a per-stage wall-clock summary to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"picola/internal/baseline/enc"
	"picola/internal/baseline/nova"
	"picola/internal/consfile"
	"picola/internal/core"
	"picola/internal/eval"
	"picola/internal/face"
	"picola/internal/obs"
	"picola/internal/obs/obshttp"
	"picola/internal/optenc"
	"picola/internal/par"
	"picola/internal/verify"
)

// jWorkers and memo are the shared -j fan-out width and the process-wide
// minimization memo-cache, set in main before dispatch.
var (
	jWorkers = 1
	memo     *eval.Cache
)

// run dispatches one encoder run; keyed by the -algo flag value. diag
// receives progress/warning lines (os.Stderr in main; the -check
// shrinker re-runs encoders with io.Discard).
var algorithms = map[string]func(p *face.Problem, nv int, seed int64, tr obs.Tracer, diag io.Writer) (*face.Encoding, error){
	"picola": func(p *face.Problem, nv int, seed int64, tr obs.Tracer, diag io.Writer) (*face.Encoding, error) {
		r, err := core.Encode(p, core.Options{NV: nv, Trace: tr, Workers: jWorkers, Cache: memo})
		if err != nil {
			return nil, err
		}
		return r.Encoding, nil
	},
	"nova": func(p *face.Problem, nv int, seed int64, tr obs.Tracer, diag io.Writer) (*face.Encoding, error) {
		return nova.Encode(p, nova.Options{Seed: seed, NV: nv})
	},
	"enc": func(p *face.Problem, nv int, seed int64, tr obs.Tracer, diag io.Writer) (*face.Encoding, error) {
		r, err := enc.Encode(p, enc.Options{Seed: seed, NV: nv, Workers: jWorkers, Cache: memo})
		if err != nil {
			return nil, err
		}
		if !r.Completed {
			fmt.Fprintln(diag, "picola: warning: enc search ran out of budget")
		}
		return r.Encoding, nil
	},
	"optimal": func(p *face.Problem, nv int, seed int64, tr obs.Tracer, diag io.Writer) (*face.Encoding, error) {
		r, err := optenc.Optimal(p)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(diag, "picola: exhaustive optimum over %d encodings: %d cubes\n",
			r.Evaluated, r.Cubes)
		return r.Encoding, nil
	},
	"all": func(p *face.Problem, nv int, seed int64, tr obs.Tracer, diag io.Writer) (*face.Encoding, error) {
		r, err := core.EncodeAll(p, core.Options{Trace: tr, Workers: jWorkers, Cache: memo})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(diag, "picola: full satisfaction at %d bits (minimum %d)\n",
			r.Encoding.NV, p.MinLength())
		return r.Encoding, nil
	},
}

func validAlgos() string {
	names := make([]string, 0, len(algorithms))
	for name := range algorithms {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func main() {
	algo := flag.String("algo", "picola", "encoder: "+validAlgos())
	nv := flag.Int("nv", 0, "code length override (0 = minimum)")
	seed := flag.Int64("seed", 1, "seed for the randomized encoders")
	evaluate := flag.Bool("eval", true, "print the per-constraint cube evaluation")
	check := flag.Bool("check", false, "run the semantic verification oracle on the encoding; exit 1 with a shrunk repro on failure")
	jFlag := par.RegisterFlag(flag.CommandLine)
	verbose := flag.Bool("v", false, "print a per-stage wall-clock summary to stderr")
	var oc obs.Config
	oc.Command = "picola"
	oc.RegisterFlags(flag.CommandLine)
	flag.Parse()
	jWorkers = par.Workers(*jFlag)
	memo = eval.NewCache()

	// Validate -algo before touching the input so a typo fails fast with
	// the valid set instead of falling through mid-run.
	run, ok := algorithms[*algo]
	if !ok {
		fmt.Fprintf(os.Stderr, "picola: unknown -algo %q (valid: %s)\n", *algo, validAlgos())
		flag.Usage()
		os.Exit(2)
	}

	session, err := oc.Start()
	if err != nil {
		fatal(err)
	}
	httpSrv, err := obshttp.Start(oc.HTTPAddr, obshttp.Options{})
	if err != nil {
		fatal(err)
	}
	if httpSrv != nil {
		fmt.Fprintf(os.Stderr, "picola: introspection server on http://%s\n", httpSrv.Addr())
		defer func() { _ = httpSrv.Close() }()
	}

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	p, err := consfile.Parse(in)
	if err != nil {
		fatal(err)
	}
	e, err := run(p, *nv, *seed, session.Tracer, os.Stderr)
	if err != nil {
		fatal(err)
	}
	if *check {
		// The minimum-length invariant only holds when the length was not
		// overridden and the encoder targets it ("all" grows the length).
		opts := verify.Options{RequireMinLength: *nv == 0 && *algo != "all"}
		rep := &verify.Report{}
		rep.Merge(verify.CheckEncoding(p, e, opts))
		rep.Merge(verify.CheckMinimization(p, e, memo))
		rep.Merge(verify.CheckCost(p, e, memo))
		if !rep.Ok() {
			fmt.Fprintln(os.Stderr, "picola: -check failed:", rep.Err())
			shrunk := verify.Shrink(p, func(q *face.Problem) bool {
				qe, err := run(q, *nv, *seed, nil, io.Discard)
				if err != nil {
					return false
				}
				bad := &verify.Report{}
				bad.Merge(verify.CheckEncoding(q, qe, opts))
				bad.Merge(verify.CheckMinimization(q, qe, memo))
				bad.Merge(verify.CheckCost(q, qe, memo))
				return !bad.Ok()
			}, 0)
			fmt.Fprintf(os.Stderr, "picola: shrunk repro:\n%s", verify.Repro(shrunk))
			if err := session.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "picola:", err)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "picola: -check passed")
	}
	for s := 0; s < p.N(); s++ {
		fmt.Printf("%-12s %s\n", p.Names[s], e.CodeString(s))
	}
	if *evaluate {
		c, err := eval.Evaluate(p, e, eval.Options{Cache: memo, Workers: jWorkers})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nconstraints: %d  satisfied: %d  cubes: %d (weighted %d)\n",
			len(p.Constraints), c.SatisfiedCount, c.Total, c.WeightedTotal)
		for i, k := range c.Cubes {
			status := "satisfied"
			if !e.Satisfied(p.Constraints[i]) {
				status = "violated"
			}
			fmt.Printf("  %s  cubes=%d  %s\n", p.Constraints[i], k, status)
		}
	}
	if *verbose {
		obs.StageSummary(os.Stderr, obs.Default)
	}
	if err := session.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "picola:", err)
	os.Exit(1)
}
