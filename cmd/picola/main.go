// Command picola encodes a set of symbols under face constraints using
// minimum code length.
//
// The input (stdin or a file argument) is a constraint-matrix file (see
// internal/consfile):
//
//	# comment
//	.symbols s1 s2 s3 s4 s5     (optional; defaults to S0..Sn-1)
//	11000                        one row per group constraint; a trailing
//	00110 2                      integer is the constraint's weight
//
// Flags select the algorithm (picola, nova, enc, optimal, all), an
// optional code-length override, and whether to print the per-constraint
// cube evaluation. "optimal" is the exhaustive reference (≤ 8 symbols);
// "all" grows the length until every constraint is satisfied.
package main

import (
	"flag"
	"fmt"
	"os"

	"picola/internal/baseline/enc"
	"picola/internal/baseline/nova"
	"picola/internal/consfile"
	"picola/internal/core"
	"picola/internal/eval"
	"picola/internal/face"
	"picola/internal/optenc"
)

func main() {
	algo := flag.String("algo", "picola", "encoder: picola, nova, enc, optimal or all")
	nv := flag.Int("nv", 0, "code length override (0 = minimum)")
	seed := flag.Int64("seed", 1, "seed for the randomized encoders")
	evaluate := flag.Bool("eval", true, "print the per-constraint cube evaluation")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	p, err := consfile.Parse(in)
	if err != nil {
		fatal(err)
	}
	var e *face.Encoding
	switch *algo {
	case "picola":
		r, err := core.Encode(p, core.Options{NV: *nv})
		if err != nil {
			fatal(err)
		}
		e = r.Encoding
	case "nova":
		e, err = nova.Encode(p, nova.Options{Seed: *seed, NV: *nv})
		if err != nil {
			fatal(err)
		}
	case "enc":
		r, err := enc.Encode(p, enc.Options{Seed: *seed, NV: *nv})
		if err != nil {
			fatal(err)
		}
		if !r.Completed {
			fmt.Fprintln(os.Stderr, "picola: warning: enc search ran out of budget")
		}
		e = r.Encoding
	case "optimal":
		r, err := optenc.Optimal(p)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "picola: exhaustive optimum over %d encodings: %d cubes\n",
			r.Evaluated, r.Cubes)
		e = r.Encoding
	case "all":
		r, err := core.EncodeAll(p)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "picola: full satisfaction at %d bits (minimum %d)\n",
			r.Encoding.NV, p.MinLength())
		e = r.Encoding
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	for s := 0; s < p.N(); s++ {
		fmt.Printf("%-12s %s\n", p.Names[s], e.CodeString(s))
	}
	if *evaluate {
		c, err := eval.Evaluate(p, e)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nconstraints: %d  satisfied: %d  cubes: %d (weighted %d)\n",
			len(p.Constraints), c.SatisfiedCount, c.Total, c.WeightedTotal)
		for i, k := range c.Cubes {
			status := "satisfied"
			if !e.Satisfied(p.Constraints[i]) {
				status = "violated"
			}
			fmt.Printf("  %s  cubes=%d  %s\n", p.Constraints[i], k, status)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "picola:", err)
	os.Exit(1)
}
