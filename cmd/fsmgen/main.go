// Command fsmgen emits the synthetic IWLS'93-style benchmark suite as
// KISS2 files.
//
//	fsmgen -name bbara           print one machine on stdout
//	fsmgen -all -dir bench/      write the whole suite to a directory
//	fsmgen -list                 list the suite with its dimensions
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"picola/internal/benchgen"
)

func main() {
	name := flag.String("name", "", "benchmark to print on stdout")
	all := flag.Bool("all", false, "write the whole suite")
	dir := flag.String("dir", ".", "output directory for -all")
	list := flag.Bool("list", false, "list the suite")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of KISS2 (with -name)")
	flag.Parse()
	switch {
	case *list:
		fmt.Printf("%-10s %3s %3s %6s %8s %7s %7s\n",
			"name", "in", "out", "states", "products", "table1", "table2")
		for _, s := range benchgen.Suite {
			fmt.Printf("%-10s %3d %3d %6d %8d %7v %7v\n",
				s.Name, s.Inputs, s.Outputs, s.States, s.Products, s.Table1, s.Table2)
		}
	case *name != "":
		spec, ok := benchgen.ByName(*name)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *name))
		}
		m := benchgen.Generate(spec)
		if *dot {
			if err := m.WriteDOT(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		if err := m.Write(os.Stdout); err != nil {
			fatal(err)
		}
	case *all:
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
		for _, spec := range benchgen.Suite {
			path := filepath.Join(*dir, spec.Name+".kiss2")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := benchgen.Generate(spec).Write(f); err != nil {
				f.Close()
				fatal(err)
			}
			f.Close()
			fmt.Println("wrote", path)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsmgen:", err)
	os.Exit(1)
}
