package main

import (
	"encoding/json"
	"io"
	"os"

	"picola/internal/analysis"
)

// Minimal SARIF 2.1.0 writer: one run, one rule per analyzer, one
// result per finding. The schema subset here is what code-scanning UIs
// (GitHub's included) need to render findings inline; everything else
// is omitted. Artifact URIs are module-relative so the log is stable
// across checkouts, matching the baseline's path convention.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the findings (possibly none — CI uploads the file
// unconditionally) to path, or to stdout when path is "-".
func writeSARIF(path string, stdout io.Writer, moduleDir string, diags []analysis.Diagnostic) error {
	rules := make([]sarifRule, 0, len(analysis.All())+2)
	for _, a := range analysis.All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules,
		sarifRule{ID: "lint", ShortDescription: sarifMessage{Text: "malformed or stale lint:ignore directive"}},
		sarifRule{ID: "baseline", ShortDescription: sarifMessage{Text: "stale baseline entry"}},
	)
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		r := sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
		}
		if d.Pos.Filename != "" {
			r.Locations = []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: moduleRel(moduleDir, d.Pos.Filename)},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}}
		}
		results = append(results, r)
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "picolint", Rules: rules}},
			Results: results,
		}},
	}
	w := stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
