package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestExitCodes pins the driver's exit-code contract: 0 clean,
// 1 findings, 2 usage or load error.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean package", []string{"internal/par"}, 0},
		{"list", []string{"-list"}, 0},
		{"findings", []string{"-analyzers", "dettaint", "internal/analysis/testdata/src/dettaint"}, 1},
		{"unknown analyzer", []string{"-analyzers", "nosuch", "internal/par"}, 2},
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"missing package", []string{"internal/does-not-exist"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstdout: %s\nstderr: %s",
					tc.args, got, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestParallelByteIdentical is the determinism gate for -j: the output
// stream must be byte-identical at any worker count.
func TestParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module twice")
	}
	var seq, par bytes.Buffer
	var stderr bytes.Buffer
	codeSeq := run([]string{"-j", "1", "./..."}, &seq, &stderr)
	codePar := run([]string{"-j", "8", "./..."}, &par, &stderr)
	if codeSeq != codePar {
		t.Fatalf("exit codes differ: -j1 %d vs -j8 %d", codeSeq, codePar)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Errorf("output differs between -j 1 and -j 8:\n-j1:\n%s\n-j8:\n%s", seq.String(), par.String())
	}
}

// TestJSONOutput checks the -json shape on a fixture with known
// findings.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-analyzers", "hotalloc", "internal/analysis/testdata/src/hotalloc"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("want exit 1, got %d (stderr: %s)", code, stderr.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("want findings, got none")
	}
	for _, f := range findings {
		if f.Analyzer != "hotalloc" || f.Line <= 0 || !strings.HasPrefix(f.File, "internal/") {
			t.Errorf("malformed finding: %+v", f)
		}
	}
}

// TestSARIFOutput checks the SARIF 2.1.0 envelope on stdout.
func TestSARIFOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-sarif", "-", "-analyzers", "lockcheck", "internal/analysis/testdata/src/lockcheck"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("want exit 1, got %d (stderr: %s)", code, stderr.String())
	}
	var log sarifLog
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("bad envelope: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run0 := log.Runs[0]
	if run0.Tool.Driver.Name != "picolint" || len(run0.Tool.Driver.Rules) == 0 {
		t.Errorf("bad tool block: %+v", run0.Tool)
	}
	if len(run0.Results) == 0 {
		t.Fatal("want results, got none")
	}
	for _, r := range run0.Results {
		if r.RuleID != "lockcheck" || len(r.Locations) != 1 {
			t.Errorf("malformed result: %+v", r)
		}
		if uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI; !strings.HasPrefix(uri, "internal/") {
			t.Errorf("URI not module-relative: %q", uri)
		}
	}
}

// TestBaselineRoundTrip: -write-baseline accepts the fixture's
// findings, a rerun against that baseline is clean, and removing the
// underlying finding makes the entry stale on a whole-module check.
func TestBaselineRoundTrip(t *testing.T) {
	bp := t.TempDir() + "/baseline"
	fixture := "internal/analysis/testdata/src/leakcheck"
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", bp, "-write-baseline", "-analyzers", "leakcheck", fixture}, &out, &errb); code != 0 {
		t.Fatalf("-write-baseline: exit %d (%s)", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", bp, "-analyzers", "leakcheck", fixture}, &out, &errb); code != 0 {
		t.Fatalf("baselined rerun: exit %d\n%s%s", code, out.String(), errb.String())
	}
}

// BenchmarkPicolint is the wall-time budget CI enforces: one full
// load-build-analyze pass over the module.
func BenchmarkPicolint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
			b.Fatalf("picolint ./... failed: exit %d\n%s%s", code, stdout.String(), stderr.String())
		}
	}
}
