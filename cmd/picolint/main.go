// Command picolint runs the repo's static-analysis suite — the eleven
// determinism / tracing / error-handling / concurrency invariants in
// internal/analysis — over module packages, with the interprocedural
// call-graph layer built once per run and shared by every analyzer.
//
//	picolint ./...                          lint the whole module
//	picolint ./internal/core ./internal/eval
//	picolint -analyzers dettaint,lockcheck ./...
//	picolint -j 1 ./...                     sequential (byte-identical to any -j)
//	picolint -json ./...                    findings as a JSON array
//	picolint -sarif findings.sarif ./...    SARIF 2.1.0 for code-scanning UIs
//	picolint -write-baseline ./...          accept current findings
//	picolint -list                          describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Findings
// can be suppressed two ways: line by line with a justified directive
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above it, or via the
// checked-in baseline (default <module>/picolint.baseline), which
// accepts findings wholesale but reports entries that stop matching —
// the baseline only shrinks. See DESIGN.md §12.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"picola/internal/analysis"
	"picola/internal/par"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver: it parses args, loads and analyzes the
// packages, applies the baseline, renders output, and returns the exit
// code (0 clean, 1 findings, 2 usage/load error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("picolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "describe the analyzers and exit")
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	sarifPath := fs.String("sarif", "", "write findings as SARIF 2.1.0 to `file` (\"-\" for stdout); written even when clean")
	basePath := fs.String("baseline", "", "baseline `file` of accepted findings (default <module>/picolint.baseline)")
	writeBase := fs.Bool("write-baseline", false, "write the current findings to the baseline file and exit 0")
	workers := par.RegisterFlag(fs)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: picolint [-list] [-analyzers a,b] [-json] [-sarif file] [-baseline file] [-write-baseline] [-j n] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, "picolint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader("")
	if err != nil {
		fmt.Fprintln(stderr, "picolint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "picolint:", err)
		return 2
	}

	// One whole-program build (serial: the loader caches type-checked
	// packages, and the call graph is a shared read-only structure), then
	// a deterministic parallel analysis pass: per-package diagnostics are
	// collected in input order by par.Map, so the flattened stream — and
	// therefore every output format — is byte-identical at any -j.
	prog := analysis.BuildProgram(pkgs)
	perPkg, err := par.Map(len(pkgs), par.Workers(*workers), func(i int) ([]analysis.Diagnostic, error) {
		return analysis.RunProgram(prog, analyzers, pkgs[i]), nil
	})
	if err != nil {
		fmt.Fprintln(stderr, "picolint:", err)
		return 2
	}
	var diags []analysis.Diagnostic
	for _, ds := range perPkg {
		diags = append(diags, ds...)
	}

	bp := *basePath
	if bp == "" {
		bp = filepath.Join(loader.ModuleDir, "picolint.baseline")
	}
	if *writeBase {
		if err := os.WriteFile(bp, []byte(analysis.FormatBaseline(loader.ModuleDir, diags)), 0o644); err != nil {
			fmt.Fprintln(stderr, "picolint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "picolint: wrote %d finding(s) to %s\n", len(diags), bp)
		return 0
	}
	base, err := analysis.LoadBaseline(bp)
	if err != nil {
		fmt.Fprintln(stderr, "picolint:", err)
		return 2
	}
	diags = base.Filter(loader.ModuleDir, diags)
	// Stale entries are only meaningful when everything was analyzed: on
	// a partial run an unmatched entry is out of scope, not fixed.
	if wholeModule(patterns) {
		diags = append(diags, base.Stale()...)
	}

	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, stdout, loader.ModuleDir, diags); err != nil {
			fmt.Fprintln(stderr, "picolint:", err)
			return 2
		}
	}
	switch {
	case *jsonOut:
		if err := writeJSON(stdout, loader.ModuleDir, diags); err != nil {
			fmt.Fprintln(stderr, "picolint:", err)
			return 2
		}
	case *sarifPath != "-": // "-" routes SARIF to stdout instead of text
		wd, _ := os.Getwd()
		for _, d := range diags {
			if wd != "" && d.Pos.Filename != "" {
				if rel, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
					d.Pos.Filename = rel
				}
			}
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "picolint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// wholeModule reports whether the patterns cover the entire module
// (the "./..." wildcard), making baseline staleness decidable.
func wholeModule(patterns []string) bool {
	for _, p := range patterns {
		if p == "./..." || p == "..." {
			return true
		}
	}
	return false
}

// jsonFinding is the machine-readable finding shape of -json.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, moduleDir string, diags []analysis.Diagnostic) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			Analyzer: d.Analyzer,
			File:     moduleRel(moduleDir, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// moduleRel maps an absolute filename onto the module-relative form
// used by machine outputs (stable across checkouts).
func moduleRel(moduleDir, filename string) string {
	if filename == "" {
		return ""
	}
	if rel, err := filepath.Rel(moduleDir, filename); err == nil && !filepath.IsAbs(rel) && rel[0] != '.' {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}
