// Command picolint runs the repo's static-analysis suite — the five
// determinism / tracing / error-handling invariants in internal/analysis
// — over module packages.
//
//	picolint ./...                          lint the whole module
//	picolint ./internal/core ./internal/eval
//	picolint -analyzers detrange,seedrand ./...
//	picolint -list                          describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Findings
// can be suppressed line by line with a justified directive:
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above it. See DESIGN.md
// §"Determinism policy and picolint".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"picola/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: picolint [-list] [-analyzers a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "picolint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "picolint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "picolint:", err)
		os.Exit(2)
	}
	wd, _ := os.Getwd()
	findings := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.Run(analyzers, pkg) {
			findings++
			if wd != "" {
				if rel, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
					d.Pos.Filename = rel
				}
			}
			fmt.Println(d)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "picolint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
