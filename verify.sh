#!/bin/sh
# verify.sh — the repo's pre-merge gate: the static checks (go vet plus
# picolint, the determinism/tracing/error-handling analyzer suite in
# internal/analysis), the full test suite, and the race detector over
# every package.
set -eux

go vet ./...
go build ./...

# picolint must exit clean on the tree and must still catch each seeded
# fixture violation (one positive fixture per analyzer) — a lint suite
# that stops firing is worse than none.
go run ./cmd/picolint ./...
for a in detrange seedrand spanend dropperr tracenil poolput; do
  if go run ./cmd/picolint "./internal/analysis/testdata/src/$a" >/dev/null 2>&1; then
    echo "picolint no longer flags the $a fixture" >&2
    exit 1
  fi
done

go test ./...
go test -race ./...

# Allocation-regression gate: on a warmed arena, one exact constraint
# scoring must perform zero heap allocations (the hot-path pooling
# contract; testing.AllocsPerRun-based, so a single stray make fails it).
go test -run TestAllocs -count=1 ./internal/eval

# Hot-path semantics gate: regenerate the Table I snapshot and require
# zero cube-count deltas against the committed baseline — the kernel,
# pooling and incremental-rescore layers may only change wall time,
# never a measurement.
tables_tmp=$(mktemp /tmp/picola-bench.XXXXXX.json)
go run ./cmd/tables -table 1 -json "$tables_tmp" >/dev/null
go run ./cmd/tables -diff BENCH_1.json "$tables_tmp"
rm -f "$tables_tmp"

# The semantic verification oracle (internal/verify) must clear the
# committed corpora plus a deterministic batch of random instances:
# every encoding re-proved valid from first principles, minimizations
# cross-checked against the exact cover, metamorphic invariants intact.
go run ./cmd/verify -random 8 -seed 1 testdata/figure1.cons testdata/infeasible.cons

# The parallel execution layer must be bit-deterministic at every worker
# count: run the determinism suite under the race detector at both ends
# of the GOMAXPROCS range (the env propagates to the cmd/tables
# subprocesses the suite spawns).
GOMAXPROCS=1 go test -race -count=1 -run Determinism .
GOMAXPROCS=4 go test -race -count=1 -run Determinism .
