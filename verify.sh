#!/bin/sh
# verify.sh — the repo's pre-merge gate: the static checks (go vet plus
# picolint, the determinism/tracing/error-handling analyzer suite in
# internal/analysis), the full test suite, and the race detector over
# every package.
set -eux

go vet ./...
go build ./...

# picolint must exit clean on the tree and must still catch each seeded
# fixture violation (one positive fixture per analyzer) — a lint suite
# that stops firing is worse than none.
go run ./cmd/picolint ./...
for a in detrange seedrand spanend dropperr tracenil poolput metricname \
         dettaint lockcheck leakcheck hotalloc; do
  if go run ./cmd/picolint "./internal/analysis/testdata/src/$a" >/dev/null 2>&1; then
    echo "picolint no longer flags the $a fixture" >&2
    exit 1
  fi
done

# Baseline-is-current gate: regenerating the baseline must reproduce the
# committed file byte for byte — entries only leave through a commit
# that also fixes (or justifies) the finding, and new findings must be
# fixed rather than silently accumulated.
base_tmp=$(mktemp /tmp/picola-baseline.XXXXXX)
go run ./cmd/picolint -baseline "$base_tmp" -write-baseline ./... 2>/dev/null
cmp picolint.baseline "$base_tmp" || {
  echo "picolint.baseline is out of date; run: go run ./cmd/picolint -write-baseline ./..." >&2
  exit 1
}
rm -f "$base_tmp"

go test ./...
go test -race ./...

# Allocation-regression gate: on a warmed arena, one exact constraint
# scoring must perform zero heap allocations, and on a warmed encoder one
# classify column scan likewise (the hot-path pooling contract;
# testing.AllocsPerRun-based, so a single stray make fails it).
go test -run TestAllocs -count=1 ./internal/eval ./internal/core

# Hot-path semantics gate: regenerate the Table I snapshot and require
# zero cube-count deltas against the committed baseline — the kernel,
# pooling and incremental-rescore layers may only change wall time,
# never a measurement. The run doubles as the observability zero-delta
# gate: it records a -ledger alongside, proving that enabling the run
# ledger changes no measurement either.
tables_tmp=$(mktemp /tmp/picola-bench.XXXXXX.json)
ledger_tmp=$(mktemp /tmp/picola-ledger.XXXXXX.json)
go run ./cmd/tables -table 1 -json "$tables_tmp" -ledger "$ledger_tmp" >/dev/null
go run ./cmd/tables -diff BENCH_4.json "$tables_tmp"
grep -q '"schema": "picola-ledger/v1"' "$ledger_tmp"

# Regression-comparator self-consistency: obsdiff of a snapshot against
# itself must exit 0 for both input kinds, whatever the thresholds.
go run ./cmd/obsdiff "$ledger_tmp" "$ledger_tmp"
go run ./cmd/obsdiff BENCH_4.json BENCH_4.json

# Cross-snapshot trajectory gates: each committed baseline step must
# show no wall regression — BENCH_2 -> BENCH_3 (set-algebra classify /
# multi-word kernels / warm-start) and BENCH_3 -> BENCH_4 (estimate-
# polish scratch buffers, don't-look candidate memory, split fusion,
# cache hot-path trim). Sub-15ms measurements sit inside the container's
# timer noise and are skipped; the large rows carry the signal.
go run ./cmd/obsdiff -min-ns 15000000 BENCH_2.json BENCH_3.json
go run ./cmd/obsdiff -min-ns 15000000 BENCH_3.json BENCH_4.json
rm -f "$tables_tmp" "$ledger_tmp"

# Corpus-batch smoke: generate a small fixed-seed corpus, run it cold
# against a fresh store, then warm against the populated store. The two
# aggregate snapshots must be byte-identical (the cache may change wall
# time, never a measurement) and the warm pass must actually reuse the
# store (zero newly appended entries).
batch_dir=$(mktemp -d /tmp/picola-batch.XXXXXX)
go run ./cmd/batch -gen -seed 7 -count 100 -max-symbols 14 "$batch_dir/corpus" >/dev/null
go run ./cmd/batch -store "$batch_dir/store" -json "$batch_dir/cold.json" "$batch_dir/corpus" >/dev/null
go run ./cmd/batch -store "$batch_dir/store" -json "$batch_dir/warm.json" "$batch_dir/corpus" >/dev/null
cmp "$batch_dir/cold.json" "$batch_dir/warm.json"
go run ./cmd/tables -diff "$batch_dir/cold.json" "$batch_dir/warm.json"
rm -rf "$batch_dir"

# Introspection-server smoke: run a sweep with -http on an ephemeral
# port, scrape /healthz and /metrics while it serves, and check that the
# Prometheus exposition carries the core counter family.
obs_bin=$(mktemp /tmp/picola-tables.XXXXXX)
obs_log=$(mktemp /tmp/picola-http.XXXXXX.log)
go build -o "$obs_bin" ./cmd/tables
"$obs_bin" -table 1 -check -http 127.0.0.1:0 >/dev/null 2>"$obs_log" &
obs_pid=$!
obs_addr=""
for i in $(seq 1 50); do
  obs_addr=$(sed -n 's,^tables: introspection server on http://,,p' "$obs_log")
  [ -n "$obs_addr" ] && break
  sleep 0.1
done
[ -n "$obs_addr" ] || { cat "$obs_log" >&2; exit 1; }
# (plain grep, not -q: -q exits at the first match and the broken pipe
# makes curl -f report a write error)
curl -fsS "http://$obs_addr/healthz" | grep '^ok$' >/dev/null
curl -fsS "http://$obs_addr/metrics" | grep '^picola_core_encodes ' >/dev/null
curl -fsS "http://$obs_addr/metrics?format=json" | grep '"counters"' >/dev/null
curl -fsS "http://$obs_addr/progress" | grep '"total"' >/dev/null
wait "$obs_pid"
rm -f "$obs_bin" "$obs_log"

# The semantic verification oracle (internal/verify) must clear the
# committed corpora plus a deterministic batch of random instances:
# every encoding re-proved valid from first principles, minimizations
# cross-checked against the exact cover, metamorphic invariants intact.
go run ./cmd/verify -random 8 -seed 1 testdata/figure1.cons testdata/infeasible.cons

# The parallel execution layer must be bit-deterministic at every worker
# count, and cancellation all-or-nothing (DESIGN.md §14): run the
# determinism and cancellation suites under the race detector at both
# ends of the GOMAXPROCS range (the env propagates to the cmd/tables
# subprocesses the suite spawns).
GOMAXPROCS=1 go test -race -count=1 -run 'Determinism|Cancel' .
GOMAXPROCS=4 go test -race -count=1 -run 'Determinism|Cancel' .
