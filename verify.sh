#!/bin/sh
# verify.sh — the repo's pre-merge gate. Runs the static checks, the full
# test suite, and the race detector over the concurrency-sensitive
# packages (the obs metrics registry is written from hot paths and read
# by snapshot exporters; core drives it from the encoder).
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/obs ./internal/core
