// Package picola is the stable public surface of the repository: face-
// constrained encoding of symbols using minimum code length, behind one
// context-aware entry point.
//
// Encode runs any of the bundled encoders (the PICOLA column algorithm,
// the NOVA and ENC baselines, the exhaustive reference, and the
// grow-until-satisfied variant) on a face.Problem and returns the
// encoding together with its per-constraint audit. The context carries
// the run's deadline: a cancelled or timed-out run returns a wrapped
// context.Canceled/DeadlineExceeded error and never a partial encoding
// (DESIGN.md §14).
//
// The package also exposes the picola-ir/v1 binary interchange format
// (MarshalProblem/MarshalRun/ExportCache and their inverses) and the
// constraint-matrix text format (ParseProblem/WriteProblem), so problems,
// results, and warmed minimization caches can be shipped between
// processes.
package picola

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"picola/internal/baseline/enc"
	"picola/internal/baseline/nova"
	"picola/internal/consfile"
	"picola/internal/core"
	"picola/internal/ctxutil"
	"picola/internal/eval"
	"picola/internal/face"
	"picola/internal/ir"
	"picola/internal/obs"
	"picola/internal/optenc"
	"picola/internal/par"
)

// Re-exported building blocks. The aliases keep the public API to one
// import for callers while the implementation stays in internal/.
type (
	// Problem is a named symbol set with weighted face constraints.
	Problem = face.Problem
	// Constraint is one group constraint (a symbol subset).
	Constraint = face.Constraint
	// Encoding assigns each symbol an nv-bit code.
	Encoding = face.Encoding
	// Cost is the per-constraint cube evaluation of an encoding.
	Cost = eval.Cost
	// Cache memoizes constraint minimizations across runs. Memoized
	// counts are a pure function of the minimization input, so sharing a
	// cache never changes any result.
	Cache = eval.Cache
	// Tracer receives structured span/event records from the pipeline.
	Tracer = obs.Tracer
)

// NewCache returns an empty minimization memo-cache, safe for
// concurrent use and shareable across Encode calls.
func NewCache() *Cache { return eval.NewCache() }

// Options configure one Encode run. The zero value runs the PICOLA
// column algorithm at the problem's minimum code length with the
// default seed and parallel fan-out, without the cube evaluation.
type Options struct {
	// Algorithm selects the encoder: "picola" (default), "nova", "enc",
	// "optimal", or "all". See Algorithms.
	Algorithm string
	// NV overrides the code length; 0 means the problem's minimum.
	NV int
	// Seed drives the randomized encoders (nova, enc); 0 means the
	// default seed 1, matching the CLI flag default.
	Seed int64
	// Workers bounds the internal parallel fan-out; 0 means GOMAXPROCS
	// and 1 reproduces the sequential execution. The output is identical
	// at every worker count.
	Workers int
	// Cache memoizes constraint minimizations (nil = none).
	Cache *Cache
	// Trace receives pipeline span/event records (nil = off).
	Trace Tracer
	// Evaluate computes Result.Cost, the per-constraint cube counts of
	// the returned encoding (the paper's Table I metric).
	Evaluate bool
}

// Result is one completed Encode run.
type Result struct {
	// Encoding is the computed code assignment.
	Encoding *Encoding
	// Satisfied[i] reports whether constraint i's face is intruder-free
	// under the encoding.
	Satisfied []bool
	// Infeasible[i] is the complement verdict per constraint, the shape
	// the verification oracle checks.
	Infeasible []bool
	// Cost is the cube evaluation; nil unless Options.Evaluate.
	Cost *Cost
	// Warnings are the encoder's diagnostic notes (e.g. the ENC search
	// running out of budget), in emission order.
	Warnings []string
}

// Algorithms lists the valid Options.Algorithm values, sorted.
func Algorithms() []string {
	names := make([]string, 0, len(encoders))
	for name := range encoders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// encodeEnv is the per-run state an encoder variant sees.
type encodeEnv struct {
	ctx  context.Context
	o    Options
	warn func(format string, args ...any)
}

// encoders dispatches Options.Algorithm. Each variant returns only the
// encoding; Encode derives the audit uniformly afterwards.
var encoders = map[string]func(env *encodeEnv, p *Problem) (*Encoding, error){
	"picola": func(env *encodeEnv, p *Problem) (*Encoding, error) {
		r, err := core.EncodeContext(env.ctx, p, core.Options{
			NV: env.o.NV, Trace: env.o.Trace, Workers: env.o.Workers, Cache: env.o.Cache,
		})
		if err != nil {
			return nil, err
		}
		return r.Encoding, nil
	},
	"nova": func(env *encodeEnv, p *Problem) (*Encoding, error) {
		// The baseline is not context-plumbed internally; the deadline is
		// honored at the run boundary.
		if err := ctxutil.Check(env.ctx, "picola.encode"); err != nil {
			return nil, err
		}
		return nova.Encode(p, nova.Options{Seed: env.o.Seed, NV: env.o.NV})
	},
	"enc": func(env *encodeEnv, p *Problem) (*Encoding, error) {
		if err := ctxutil.Check(env.ctx, "picola.encode"); err != nil {
			return nil, err
		}
		r, err := enc.Encode(p, enc.Options{
			Seed: env.o.Seed, NV: env.o.NV, Workers: env.o.Workers, Cache: env.o.Cache,
		})
		if err != nil {
			return nil, err
		}
		if !r.Completed {
			env.warn("enc search ran out of budget")
		}
		return r.Encoding, nil
	},
	"optimal": func(env *encodeEnv, p *Problem) (*Encoding, error) {
		if err := ctxutil.Check(env.ctx, "picola.encode"); err != nil {
			return nil, err
		}
		r, err := optenc.Optimal(p)
		if err != nil {
			return nil, err
		}
		env.warn("exhaustive optimum over %d encodings: %d cubes", r.Evaluated, r.Cubes)
		return r.Encoding, nil
	},
	"all": func(env *encodeEnv, p *Problem) (*Encoding, error) {
		r, err := core.EncodeAllContext(env.ctx, p, core.Options{
			Trace: env.o.Trace, Workers: env.o.Workers, Cache: env.o.Cache,
		})
		if err != nil {
			return nil, err
		}
		env.warn("full satisfaction at %d bits (minimum %d)", r.Encoding.NV, p.MinLength())
		return r.Encoding, nil
	},
}

// Encode runs one face-constrained encoding end to end: dispatch the
// selected encoder, audit the result per constraint, and (with
// Options.Evaluate) score it by minimized cube count. ctx deadlines and
// cancellation are checked throughout the PICOLA pipeline and at every
// minimization boundary; a cancelled run returns an error wrapping
// context.Canceled or context.DeadlineExceeded and a nil Result.
func Encode(ctx context.Context, p *Problem, o Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p == nil {
		return nil, fmt.Errorf("picola: nil problem")
	}
	if o.Algorithm == "" {
		o.Algorithm = "picola"
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	o.Workers = par.Workers(o.Workers)
	run, ok := encoders[o.Algorithm]
	if !ok {
		return nil, fmt.Errorf("picola: unknown algorithm %q (valid: %s)",
			o.Algorithm, strings.Join(Algorithms(), ", "))
	}
	res := &Result{}
	env := &encodeEnv{ctx: ctx, o: o, warn: func(format string, args ...any) {
		res.Warnings = append(res.Warnings, fmt.Sprintf(format, args...))
	}}
	e, err := run(env, p)
	if err != nil {
		return nil, err
	}
	res.Encoding = e
	res.Satisfied = make([]bool, len(p.Constraints))
	res.Infeasible = make([]bool, len(p.Constraints))
	for i, c := range p.Constraints {
		sat := e.Satisfied(c)
		res.Satisfied[i] = sat
		res.Infeasible[i] = !sat
	}
	if o.Evaluate {
		cost, err := eval.EvaluateContext(ctx, p, e, eval.Options{Cache: o.Cache, Workers: o.Workers})
		if err != nil {
			return nil, err
		}
		res.Cost = cost
	}
	return res, nil
}

// ParseProblem reads a constraint-matrix file (the cmd/picola input
// format; see internal/consfile).
func ParseProblem(r io.Reader) (*Problem, error) { return consfile.Parse(r) }

// ParseProblemString is ParseProblem on an in-memory string.
func ParseProblemString(s string) (*Problem, error) { return consfile.ParseString(s) }

// WriteProblem writes the problem back out in constraint-matrix form.
func WriteProblem(w io.Writer, p *Problem) error { return consfile.Write(w, p) }

// MarshalProblem serializes a problem alone in picola-ir/v1 binary form.
func MarshalProblem(p *Problem) ([]byte, error) {
	return ir.Marshal(&ir.File{Problem: p})
}

// UnmarshalProblem decodes a picola-ir/v1 blob carrying a problem.
func UnmarshalProblem(b []byte) (*Problem, error) {
	f, err := ir.Unmarshal(b)
	if err != nil {
		return nil, err
	}
	if f.Problem == nil {
		return nil, fmt.Errorf("picola: IR blob carries no problem section")
	}
	return f.Problem, nil
}

// MarshalRun serializes a problem together with an Encode result —
// encoding plus audit (and the cube counts when res.Cost is set) — in
// picola-ir/v1 binary form.
func MarshalRun(p *Problem, res *Result) ([]byte, error) {
	if res == nil || res.Encoding == nil {
		return nil, fmt.Errorf("picola: cannot marshal a run without an encoding")
	}
	f := &ir.File{Problem: p, Encoding: res.Encoding}
	if res.Cost != nil {
		f.Audit = &ir.Audit{
			Satisfied:      res.Satisfied,
			Infeasible:     res.Infeasible,
			Cubes:          res.Cost.Cubes,
			Total:          res.Cost.Total,
			WeightedTotal:  res.Cost.WeightedTotal,
			SatisfiedCount: res.Cost.SatisfiedCount,
		}
	}
	return ir.Marshal(f)
}

// UnmarshalRun decodes a picola-ir/v1 blob back into the problem and
// result MarshalRun serialized. Result.Cost is nil when the blob carries
// no audit section.
func UnmarshalRun(b []byte) (*Problem, *Result, error) {
	f, err := ir.Unmarshal(b)
	if err != nil {
		return nil, nil, err
	}
	if f.Encoding == nil {
		return nil, nil, fmt.Errorf("picola: IR blob carries no encoding section")
	}
	res := &Result{Encoding: f.Encoding}
	if f.Audit != nil {
		res.Satisfied = f.Audit.Satisfied
		res.Infeasible = f.Audit.Infeasible
		res.Cost = &Cost{
			Cubes:          f.Audit.Cubes,
			Total:          f.Audit.Total,
			WeightedTotal:  f.Audit.WeightedTotal,
			SatisfiedCount: f.Audit.SatisfiedCount,
		}
	} else if f.Problem != nil {
		res.Satisfied = make([]bool, len(f.Problem.Constraints))
		res.Infeasible = make([]bool, len(f.Problem.Constraints))
		for i, c := range f.Problem.Constraints {
			sat := f.Encoding.Satisfied(c)
			res.Satisfied[i] = sat
			res.Infeasible[i] = !sat
		}
	}
	return f.Problem, res, nil
}

// ExportCache serializes every memoized entry of the cache in
// picola-ir/v1 binary form, in a deterministic order.
func ExportCache(c *Cache) ([]byte, error) {
	if c == nil {
		return nil, fmt.Errorf("picola: cannot export a nil cache")
	}
	entries := c.Export()
	if entries == nil {
		entries = []eval.CacheEntry{}
	}
	return ir.Marshal(&ir.File{CacheEntries: entries})
}

// CacheImportStats is the per-failure-class breakdown of one cache
// import (see eval.ImportStats).
type CacheImportStats = eval.ImportStats

// ImportCache installs the entries of an ExportCache blob into the
// cache, returning the per-class import breakdown (existing entries are
// kept; invalid ones are skipped and counted, never fatal).
func ImportCache(c *Cache, b []byte) (CacheImportStats, error) {
	if c == nil {
		return CacheImportStats{}, fmt.Errorf("picola: cannot import into a nil cache")
	}
	f, err := ir.Unmarshal(b)
	if err != nil {
		return CacheImportStats{}, err
	}
	return c.Import(f.CacheEntries)
}
