package picola

import (
	"sort"
	"strings"
	"testing"

	"picola/internal/baseline/enc"
	"picola/internal/baseline/nova"
	"picola/internal/bdd"
	"picola/internal/benchgen"
	"picola/internal/core"
	"picola/internal/espresso"
	"picola/internal/eval"
	"picola/internal/kiss"
	"picola/internal/stassign"
	"picola/internal/symbolic"
)

// TestPipelineEndToEnd drives benchmark generation → constraint extraction
// → all three encoders → evaluation on a slice of the suite and checks the
// structural invariants every stage guarantees.
func TestPipelineEndToEnd(t *testing.T) {
	for _, name := range []string{"bbara", "opus", "dk14", "ex3"} {
		spec, ok := benchgen.ByName(name)
		if !ok {
			t.Fatalf("missing spec %s", name)
		}
		m := benchgen.Generate(spec)
		prob, implicants, err := symbolic.ExtractConstraints(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if implicants <= 0 || len(prob.Constraints) == 0 {
			t.Fatalf("%s: degenerate extraction", name)
		}

		pic, err := core.Encode(prob)
		if err != nil {
			t.Fatalf("%s picola: %v", name, err)
		}
		nov, err := nova.Encode(prob, nova.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s nova: %v", name, err)
		}
		en, err := enc.Encode(prob, enc.Options{Seed: 1, Budget: 5000})
		if err != nil {
			t.Fatalf("%s enc: %v", name, err)
		}
		for label, e := range map[string]interface{ Injective() bool }{
			"picola": pic.Encoding, "nova": nov, "enc": en.Encoding,
		} {
			if !e.Injective() {
				t.Fatalf("%s %s: duplicate codes", name, label)
			}
		}
		pc, err := eval.Evaluate(prob, pic.Encoding)
		if err != nil {
			t.Fatal(err)
		}
		// Every constraint costs at least one cube and satisfied ones
		// exactly one.
		for i, k := range pc.Cubes {
			if k < 1 {
				t.Fatalf("%s: constraint %d evaluates to %d cubes", name, i, k)
			}
			if pic.Encoding.Satisfied(prob.Constraints[i]) && k != 1 {
				t.Fatalf("%s: satisfied constraint %d costs %d cubes", name, i, k)
			}
		}
	}
}

// TestAssignmentImplementsMachine checks the central correctness property
// of the state-assignment tool on a generated benchmark: the minimized
// encoded cover is a verified implementation of the encoded function.
func TestAssignmentImplementsMachine(t *testing.T) {
	spec, _ := benchgen.ByName("dk14")
	m := benchgen.Generate(spec)
	for _, encName := range []stassign.Encoder{stassign.Picola, stassign.NovaIH} {
		rep, err := stassign.Assign(m, stassign.Options{Encoder: encName, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		d, on, dc, off, err := stassign.BuildEncoded(m, rep.Encoding)
		if err != nil {
			t.Fatal(err)
		}
		f := &espresso.Function{D: d, On: on, DC: dc, Off: off}
		min, err := espresso.Minimize(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := espresso.Verify(min, f); err != nil {
			t.Fatalf("%v: %v", encName, err)
		}
		if min.Len() != rep.Products {
			t.Fatalf("%v: reported %d products, re-minimized %d", encName, rep.Products, min.Len())
		}
	}
}

// TestEncodedMachineAgainstBDDOracle rebuilds the encoded machine's
// per-output functions as canonical BDDs and checks the minimized cover
// implements each output within its don't-care band: ON ⊆ min ⊆ ON ∪ DC.
// This validates the espresso result through a representation entirely
// disjoint from the cover algebra it was computed with.
func TestEncodedMachineAgainstBDDOracle(t *testing.T) {
	spec, _ := benchgen.ByName("bbara")
	m := benchgen.Generate(spec)
	rep, err := stassign.Assign(m, stassign.Options{Encoder: stassign.Picola})
	if err != nil {
		t.Fatal(err)
	}
	d, on, dc, _, err := stassign.BuildEncoded(m, rep.Encoding)
	if err != nil {
		t.Fatal(err)
	}
	min, _, err := stassign.MinimizeEncoded(m, rep.Encoding)
	if err != nil {
		t.Fatal(err)
	}
	inputs := m.NumInputs + rep.Encoding.NV
	no := d.Size(inputs)
	mgr := bdd.New(inputs)
	for o := 0; o < no; o++ {
		onF := mgr.FromOutputCover(on, inputs, o)
		dcF := mgr.FromOutputCover(dc, inputs, o)
		minF := mgr.FromOutputCover(min, inputs, o)
		if !mgr.Implies(onF, minF) {
			t.Fatalf("output %d: minimized cover misses ON points", o)
		}
		if !mgr.Implies(minF, mgr.Or(onF, dcF)) {
			t.Fatalf("output %d: minimized cover asserts outside ON ∪ DC", o)
		}
	}
}

// TestKISSRoundTripThroughPipeline: serializing a generated machine to
// KISS2 and re-parsing it must leave the whole pipeline's results
// unchanged.
func TestKISSRoundTripThroughPipeline(t *testing.T) {
	spec, _ := benchgen.ByName("lion9")
	m1 := benchgen.Generate(spec)
	m2, err := kiss.ParseString(m1.String())
	if err != nil {
		t.Fatal(err)
	}
	m2.Name = m1.Name
	p1, n1, err := symbolic.ExtractConstraints(m1)
	if err != nil {
		t.Fatal(err)
	}
	p2, n2, err := symbolic.ExtractConstraints(m2)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 || len(p1.Constraints) != len(p2.Constraints) {
		t.Fatalf("round trip changed extraction: %d/%d vs %d/%d",
			n1, len(p1.Constraints), n2, len(p2.Constraints))
	}
	// KISS parsing discovers states in transition order, which may differ
	// from the generator's order, so compare constraints as sets of state
	// names.
	nameSet := func(names []string, members []int) string {
		out := make([]string, len(members))
		for i, m := range members {
			out[i] = names[m]
		}
		sort.Strings(out)
		return strings.Join(out, ",")
	}
	var s1, s2 []string
	for i := range p1.Constraints {
		s1 = append(s1, nameSet(p1.Names, p1.Constraints[i].Members()))
		s2 = append(s2, nameSet(p2.Names, p2.Constraints[i].Members()))
	}
	sort.Strings(s1)
	sort.Strings(s2)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("constraint sets differ after round trip:\n%v\nvs\n%v", s1, s2)
		}
	}
}

// TestDeterministicPipeline: two full runs produce identical encodings and
// identical costs — the tables in EXPERIMENTS.md are reproducible.
func TestDeterministicPipeline(t *testing.T) {
	spec, _ := benchgen.ByName("ex5")
	run := func() (string, int) {
		m := benchgen.Generate(spec)
		prob, _, err := symbolic.ExtractConstraints(m)
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.Encode(prob)
		if err != nil {
			t.Fatal(err)
		}
		c, err := eval.Evaluate(prob, r.Encoding)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for s := 0; s < prob.N(); s++ {
			sb.WriteString(r.Encoding.CodeString(s))
		}
		return sb.String(), c.Total
	}
	codes1, cost1 := run()
	codes2, cost2 := run()
	if codes1 != codes2 || cost1 != cost2 {
		t.Fatal("pipeline is not deterministic")
	}
}
