package picola

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// renderEncodeResult reproduces cmd/picola's stdout (codes block plus
// -eval block) from a public-API Result. The parity test below pins the
// two to the byte: the CLI is a thin shell over picola.Encode and must
// not drift from it.
func renderEncodeResult(p *Problem, res *Result) []byte {
	var buf bytes.Buffer
	for s := 0; s < p.N(); s++ {
		fmt.Fprintf(&buf, "%-12s %s\n", p.Names[s], res.Encoding.CodeString(s))
	}
	c := res.Cost
	fmt.Fprintf(&buf, "\nconstraints: %d  satisfied: %d  cubes: %d (weighted %d)\n",
		len(p.Constraints), c.SatisfiedCount, c.Total, c.WeightedTotal)
	for i, k := range c.Cubes {
		status := "satisfied"
		if !res.Encoding.Satisfied(p.Constraints[i]) {
			status = "violated"
		}
		fmt.Fprintf(&buf, "  %s  cubes=%d  %s\n", p.Constraints[i], k, status)
	}
	return buf.Bytes()
}

// TestPublicAPICLIParity encodes the bundled example problems through
// picola.Encode in-process and through the real cmd/picola binary in a
// separate process, per algorithm, and requires byte-identical output.
func TestPublicAPICLIParity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run per case")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	files := []string{
		filepath.Join("testdata", "figure1.cons"),
		filepath.Join("testdata", "infeasible.cons"),
	}
	for _, file := range files {
		for _, algo := range []string{"picola", "nova", "enc", "all"} {
			t.Run(filepath.Base(file)+"/"+algo, func(t *testing.T) {
				b, err := os.ReadFile(file)
				if err != nil {
					t.Fatal(err)
				}
				p, err := ParseProblemString(string(b))
				if err != nil {
					t.Fatal(err)
				}
				res, err := Encode(context.Background(), p, Options{
					Algorithm: algo, Seed: 1, Workers: 2, Cache: NewCache(), Evaluate: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				want := renderEncodeResult(p, res)

				cmd := exec.Command(goBin, "run", "./cmd/picola",
					"-algo", algo, "-seed", "1", "-j", "2", file)
				var out, stderr bytes.Buffer
				cmd.Stdout = &out
				cmd.Stderr = &stderr
				if err := cmd.Run(); err != nil {
					t.Fatalf("cmd/picola: %v\n%s", err, stderr.String())
				}
				if !bytes.Equal(out.Bytes(), want) {
					t.Errorf("public API and CLI output differ:\n--- picola.Encode ---\n%s\n--- cmd/picola ---\n%s",
						want, out.String())
				}
			})
		}
	}
}

// TestPublicAPIRunRoundTrip closes the loop between Encode and the IR
// layer: a full run marshalled with MarshalRun and decoded back carries
// the same problem, encoding, verdicts and cost.
func TestPublicAPIRunRoundTrip(t *testing.T) {
	b, err := os.ReadFile(filepath.Join("testdata", "figure1.cons"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseProblemString(string(b))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Encode(context.Background(), p, Options{Workers: 1, Evaluate: true})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := MarshalRun(p, res)
	if err != nil {
		t.Fatal(err)
	}
	p2, res2, err := UnmarshalRun(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderEncodeResult(p2, res2), renderEncodeResult(p, res); !bytes.Equal(got, want) {
		t.Errorf("IR round-trip changed the run:\n%s\nvs\n%s", got, want)
	}
	// Problem-only round-trip through the convenience wrappers.
	pb, err := MarshalProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := UnmarshalProblem(pb)
	if err != nil {
		t.Fatal(err)
	}
	if p3.String() != p.String() {
		t.Errorf("problem round-trip drifted:\n%s\nvs\n%s", p3, p)
	}
	// Cache export/import through the public wrappers.
	cache := NewCache()
	if _, err := Encode(context.Background(), p, Options{Workers: 1, Cache: cache, Evaluate: true}); err != nil {
		t.Fatal(err)
	}
	cb, err := ExportCache(cache)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewCache()
	if _, err := ImportCache(fresh, cb); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != cache.Len() {
		t.Errorf("cache import kept %d of %d entries", fresh.Len(), cache.Len())
	}
}
